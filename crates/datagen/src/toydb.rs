//! The paper's Figure 2 product database, row for row.
//!
//! Four tables: Product Type (`P`), Color (`C`), Attribute (`A`) and Item
//! (`I`), with `I` referencing the other three. The "saffron scented candle"
//! running example (Example 1) plays out exactly as in the paper:
//!
//! * `q1 = P_candle ⋈ I_scented ⋈ C_saffron` is dead; its maximal alive
//!   sub-queries are `P_candle ⋈ I_scented` and `C_saffron`.
//! * `q2 = P_candle ⋈ I_scented ⋈ A_saffron` is dead; its maximal alive
//!   sub-queries are `P_candle ⋈ I_scented` and `I_scented ⋈ A_saffron`.

use relengine::{DataType, Database, DatabaseBuilder, Value};

/// Builds the Figure 2 database (finalized, integrity-checked).
pub fn product_database() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype")
        .column("id", DataType::Int)
        .column("product_type", DataType::Text)
        .primary_key("id");
    b.table("color")
        .column("id", DataType::Int)
        .column("color", DataType::Text)
        .column("synonyms", DataType::Text)
        .primary_key("id");
    b.table("attribute")
        .column("id", DataType::Int)
        .column("property", DataType::Text)
        .column("value", DataType::Text)
        .primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .column("attr_id", DataType::Int)
        .column("cost_cents", DataType::Int)
        .column("description", DataType::Text)
        .primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").expect("schema is static");
    b.foreign_key("item", "color_id", "color", "id").expect("schema is static");
    b.foreign_key("item", "attr_id", "attribute", "id").expect("schema is static");
    let mut db = b.finish().expect("static schema builds");

    for (id, pt) in [(1, "oil"), (2, "candle"), (3, "incense")] {
        db.insert_values("ptype", vec![Value::Int(id), Value::text(pt)])
            .expect("static row");
    }
    for (id, color, syn) in [
        (1, "red", "crimson, orange"),
        (2, "yellow", "golden, lemon"),
        (3, "pink", "peach, salmon"),
        (4, "saffron", "yellow, orange"),
    ] {
        db.insert_values("color", vec![Value::Int(id), Value::text(color), Value::text(syn)])
            .expect("static row");
    }
    for (id, prop, value) in [
        (1, "scent", "saffron"),
        (2, "scent", "vanilla"),
        (3, "pattern", "floral"),
        (4, "pattern", "checkered"),
    ] {
        db.insert_values(
            "attribute",
            vec![Value::Int(id), Value::text(prop), Value::text(value)],
        )
        .expect("static row");
    }
    // (id, name, ptype, color (NULL = "NA"), attr, cost, description)
    type ItemRow = (i64, &'static str, i64, Option<i64>, i64, i64, &'static str);
    let items: [ItemRow; 4] = [
        (1, "saffron scented oil", 1, None, 1, 499, "3.4 oz. burns without fumes."),
        (2, "vanilla scented candle", 2, Some(2), 2, 599, "burn time 50 hrs. 6.4 oz. 2pck."),
        (3, "crimson scented candle", 2, Some(1), 3, 399, "hand-made. saffron scented. 2pck."),
        (4, "red checkered candle", 2, Some(1), 4, 399, "rose scented. made from essential oils."),
    ];
    for (id, name, pt, color, attr, cost, desc) in items {
        db.insert_values(
            "item",
            vec![
                Value::Int(id),
                Value::text(name),
                Value::Int(pt),
                color.map_or(Value::Null, Value::Int),
                Value::Int(attr),
                Value::Int(cost),
                Value::text(desc),
            ],
        )
        .expect("static row");
    }
    db.finalize();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure2() {
        let db = product_database();
        assert_eq!(db.table_count(), 4);
        assert_eq!(db.foreign_keys().len(), 3);
        assert_eq!(db.table(db.table_id("ptype").unwrap()).len(), 3);
        assert_eq!(db.table(db.table_id("color").unwrap()).len(), 4);
        assert_eq!(db.table(db.table_id("attribute").unwrap()).len(), 4);
        assert_eq!(db.table(db.table_id("item").unwrap()).len(), 4);
        assert_eq!(db.total_rows(), 15);
    }

    #[test]
    fn integrity_holds() {
        product_database().check_integrity().unwrap();
    }

    #[test]
    fn item_one_has_null_color() {
        let db = product_database();
        let items = db.table(db.table_id("item").unwrap());
        assert!(items.row(0)[3].is_null());
        assert!(!items.row(1)[3].is_null());
    }
}
