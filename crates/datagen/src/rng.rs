//! Deterministic pseudo-random numbers — re-exported from [`relengine::rng`].
//!
//! The SplitMix64 generator originally lived here; it moved down into
//! `relengine` so the engine's chaos/fault-injection layer
//! (`relengine::chaos`) can draw from the same deterministic stream type
//! without a circular dependency (datagen already depends on relengine).
//! Every existing `datagen::rng::SplitMix64` call site keeps working through
//! this re-export.

pub use relengine::rng::{SampleRange, SplitMix64};
