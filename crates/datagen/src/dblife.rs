//! Synthetic DBLife-like dataset generator.
//!
//! The paper evaluates on a 40 MB DBLife snapshot: 801,189 tuples in 14
//! tables — 5 entity tables (Person, Publication, Conference, Organization,
//! Topic) holding all the text, and 9 relationship tables holding only
//! key pairs, star-shaped around Person (Figure 8). That snapshot is not
//! publicly available, so this generator produces a structurally equivalent
//! database:
//!
//! * the same 14-table schema (including a self-relationship, `cites`,
//!   between publications);
//! * text confined to entity tables, so keywords only bind there;
//! * a planted vocabulary making the Table 2 workload behave as in the
//!   paper — person names like "Widom" and "DeRose", conferences "VLDB" and
//!   "SIGMOD", topics like "Probabilistic Data", the term "tutorial" inside
//!   publication titles, and "Washington" spread over three entity tables;
//! * two *negative constraints* that manufacture the paper's interesting
//!   non-answers: publications authored by DeRose never appear in VLDB, and
//!   DeWitt never authors a publication titled "tutorial" — so Q4 and Q6 are
//!   dead at the two-table join level yet their keywords connect through
//!   longer join paths (co-authors, citations), exactly the behaviour §3.2
//!   describes;
//! * matching *positive plants*: Widom authors the Trio paper, Hristidis
//!   works on Keyword Search, Gray serves on the SIGMOD committee, DeRose
//!   co-authors with Gray (who does publish in VLDB).
//!
//! Everything is driven by a single `u64` seed, so every experiment is
//! reproducible.

use crate::rng::SplitMix64;
use relengine::{DataType, Database, DatabaseBuilder, Value};
use std::collections::HashSet;

/// Size and wiring parameters of the generated database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DblifeConfig {
    /// RNG seed; equal seeds produce identical databases.
    pub seed: u64,
    /// Number of persons (min 16; the planted specials need ids).
    pub persons: usize,
    /// Number of publications (min 16).
    pub publications: usize,
    /// Number of conferences (min 8).
    pub conferences: usize,
    /// Number of organizations (min 4).
    pub organizations: usize,
    /// Number of topics (min 12).
    pub topics: usize,
}

impl DblifeConfig {
    /// Very small instance for unit tests (~500 tuples).
    pub fn tiny() -> Self {
        DblifeConfig { seed: 7, persons: 40, publications: 60, conferences: 8, organizations: 10, topics: 14 }
    }

    /// Small instance for integration tests (~4k tuples).
    pub fn small() -> Self {
        DblifeConfig { seed: 7, persons: 300, publications: 500, conferences: 15, organizations: 40, topics: 30 }
    }

    /// Medium instance for benchmark runs (~30k tuples).
    pub fn medium() -> Self {
        DblifeConfig { seed: 7, persons: 2_000, publications: 4_000, conferences: 25, organizations: 150, topics: 60 }
    }

    /// Approximates the paper's snapshot size (~800k tuples).
    pub fn paper_scale() -> Self {
        DblifeConfig {
            seed: 7,
            persons: 50_000,
            publications: 100_000,
            conferences: 60,
            organizations: 3_000,
            topics: 300,
        }
    }

    fn clamped(mut self) -> Self {
        self.persons = self.persons.max(16);
        self.publications = self.publications.max(16);
        self.conferences = self.conferences.max(8);
        self.organizations = self.organizations.max(4);
        self.topics = self.topics.max(12);
        self
    }
}

/// Surnames the workload queries reference; persons 1..=9 carry them.
const SPECIAL_SURNAMES: [&str; 9] = [
    "Widom", "Hristidis", "Agrawal", "Chaudhuri", "Das", "DeRose", "Gray", "DeWitt", "Washington",
];

const GENERIC_SURNAMES: [&str; 40] = [
    "Meyer", "Okafor", "Lindqvist", "Tanaka", "Moreau", "Kovacs", "Petrov", "Silva", "Novak",
    "Larsen", "Fischer", "Romano", "Dubois", "Nilsen", "Weber", "Costa", "Mueller", "Janssen",
    "Svensson", "Rossi", "Nakamura", "Andersen", "Keller", "Fontaine", "Berg", "Castillo",
    "Vargas", "Lemaire", "Holm", "Eriksen", "Marino", "Sato", "Vogel", "Lund", "Ferrari",
    "Dietrich", "Moretti", "Blanc", "Soler", "Haas",
];

const FIRST_NAMES: [&str; 24] = [
    "Jennifer", "Vagelis", "Rakesh", "Surajit", "Gautam", "Pedro", "Jim", "David", "George",
    "Alice", "Boris", "Carla", "Dmitri", "Elena", "Felix", "Greta", "Henrik", "Ines", "Jonas",
    "Katrin", "Lars", "Marta", "Nils", "Olga",
];

/// Topic names; the first six carry the workload's topic keywords.
const SPECIAL_TOPICS: [&str; 6] = [
    "Keyword Search",
    "Probabilistic Data",
    "Stream Data",
    "Histograms",
    "XML Processing",
    "Data Integration",
];

const TOPIC_ADJ: [&str; 10] = [
    "Approximate", "Declarative", "Federated", "Interactive", "Multimodal", "Versioned",
    "Temporal", "Spatial", "Secure", "Graph",
];
const TOPIC_NOUN: [&str; 10] = [
    "Indexing", "Provenance", "Crowdsourcing", "Benchmarking", "Caching", "Replication",
    "Sampling", "Compression", "Scheduling", "Visualization",
];

/// Conference names; VLDB and SIGMOD are the workload's.
const CONFERENCES: [&str; 8] = ["VLDB", "SIGMOD", "ICDE", "EDBT", "CIKM", "PODS", "KDD", "WSDM"];

const ORG_PREFIX: [&str; 6] =
    ["University of", "Institute of", "Laboratory of", "College of", "Center for", "School of"];
const ORG_NAME: [&str; 12] = [
    "Wisconsin", "Helsinki", "Toronto", "Auckland", "Leuven", "Granada", "Kyoto", "Bergen",
    "Patras", "Ljubljana", "Tartu", "Uppsala",
];

/// Title vocabulary chosen to be disjoint from every workload keyword, so
/// generic titles never add interpretations.
const TITLE_ADJ: [&str; 8] = [
    "Efficient", "Scalable", "Adaptive", "Parallel", "Robust", "Incremental", "Unified",
    "Lightweight",
];
const TITLE_NOUN: [&str; 8] = [
    "Algorithms", "Techniques", "Systems", "Frameworks", "Architectures", "Operators",
    "Pipelines", "Engines",
];
const TITLE_TAIL: [&str; 8] = [
    "Evaluation", "Processing", "Management", "Analysis", "Exploration", "Execution",
    "Optimization", "Maintenance",
];

/// Fixed person ids (1-based) of the planted specials.
mod pid {
    pub const WIDOM: i64 = 1;
    pub const HRISTIDIS: i64 = 2;
    pub const DEROSE: i64 = 6;
    pub const GRAY: i64 = 7;
    pub const DEWITT: i64 = 8;
}

/// Builds the 14-table DBLife schema (5 entity + 9 relationship tables).
fn schema() -> Database {
    let mut b = DatabaseBuilder::new();
    for (name, text_col) in [
        ("person", "name"),
        ("publication", "title"),
        ("conference", "name"),
        ("organization", "name"),
        ("topic", "name"),
    ] {
        b.table(name)
            .column("id", DataType::Int)
            .column(text_col, DataType::Text)
            .primary_key("id");
    }
    let relationships: [(&str, &str, &str, &str, &str); 9] = [
        ("writes", "person_id", "person", "pub_id", "publication"),
        ("affiliated_with", "person_id", "person", "org_id", "organization"),
        ("works_on", "person_id", "person", "topic_id", "topic"),
        ("serves_on", "person_id", "person", "conf_id", "conference"),
        ("published_in", "pub_id", "publication", "conf_id", "conference"),
        ("about", "pub_id", "publication", "topic_id", "topic"),
        ("cites", "citing_id", "publication", "cited_id", "publication"),
        ("conf_topic", "conf_id", "conference", "topic_id", "topic"),
        ("colleague_of", "person_a", "person", "person_b", "person"),
    ];
    for (name, ca, ta, cb, tb) in relationships {
        b.table(name).column(ca, DataType::Int).column(cb, DataType::Int);
        b.foreign_key(name, ca, ta, "id").expect("static schema");
        b.foreign_key(name, cb, tb, "id").expect("static schema");
    }
    b.finish().expect("static schema builds")
}

/// Generates the synthetic DBLife database for `config`.
pub fn generate_dblife(config: &DblifeConfig) -> Database {
    let cfg = config.clamped();
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut db = schema();

    // --- Entities ---------------------------------------------------------
    for id in 1..=cfg.persons as i64 {
        let name = if (id as usize) <= SPECIAL_SURNAMES.len() {
            let first = FIRST_NAMES[(id as usize - 1) % FIRST_NAMES.len()];
            format!("{first} {}", SPECIAL_SURNAMES[id as usize - 1])
        } else {
            format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                GENERIC_SURNAMES[rng.gen_range(0..GENERIC_SURNAMES.len())]
            )
        };
        db.insert_values("person", vec![Value::Int(id), Value::text(name)]).expect("valid row");
    }

    // Publications. Planted titles first.
    let mut tutorial_pubs: Vec<i64> = Vec::new();
    for id in 1..=cfg.publications as i64 {
        let title = match id {
            1 => "The Trio Project: Uncertainty and Lineage".to_owned(),
            2 => "A Washington Workshop Report".to_owned(),
            _ => {
                // ~4% of titles are tutorials.
                if rng.gen_ratio(1, 25) {
                    tutorial_pubs.push(id);
                    format!(
                        "A Tutorial on {} {}",
                        TITLE_ADJ[rng.gen_range(0..TITLE_ADJ.len())],
                        TITLE_NOUN[rng.gen_range(0..TITLE_NOUN.len())]
                    )
                } else {
                    format!(
                        "{} {} for {} {}",
                        TITLE_ADJ[rng.gen_range(0..TITLE_ADJ.len())],
                        TITLE_NOUN[rng.gen_range(0..TITLE_NOUN.len())],
                        TITLE_ADJ[rng.gen_range(0..TITLE_ADJ.len())],
                        TITLE_TAIL[rng.gen_range(0..TITLE_TAIL.len())]
                    )
                }
            }
        };
        db.insert_values("publication", vec![Value::Int(id), Value::text(title)])
            .expect("valid row");
    }

    for id in 1..=cfg.conferences as i64 {
        let name = if (id as usize) <= CONFERENCES.len() {
            CONFERENCES[id as usize - 1].to_owned()
        } else {
            format!("Workshop {id}")
        };
        db.insert_values("conference", vec![Value::Int(id), Value::text(name)])
            .expect("valid row");
    }

    for id in 1..=cfg.organizations as i64 {
        let name = if id == 1 {
            "University of Washington".to_owned()
        } else {
            format!(
                "{} {}",
                ORG_PREFIX[rng.gen_range(0..ORG_PREFIX.len())],
                ORG_NAME[rng.gen_range(0..ORG_NAME.len())]
            )
        };
        db.insert_values("organization", vec![Value::Int(id), Value::text(name)])
            .expect("valid row");
    }

    for id in 1..=cfg.topics as i64 {
        let name = if (id as usize) <= SPECIAL_TOPICS.len() {
            SPECIAL_TOPICS[id as usize - 1].to_owned()
        } else {
            format!(
                "{} {}",
                TOPIC_ADJ[rng.gen_range(0..TOPIC_ADJ.len())],
                TOPIC_NOUN[rng.gen_range(0..TOPIC_NOUN.len())]
            )
        };
        db.insert_values("topic", vec![Value::Int(id), Value::text(name)]).expect("valid row");
    }

    // --- Relationships -----------------------------------------------------
    let np = cfg.persons as i64;
    let npub = cfg.publications as i64;
    let nconf = cfg.conferences as i64;
    let norg = cfg.organizations as i64;
    let ntopic = cfg.topics as i64;
    let vldb: i64 = 1; // conference ids follow CONFERENCES order
    let sigmod: i64 = 2;

    // writes: 1-3 authors per publication; DeWitt never authors a tutorial.
    let mut writes: HashSet<(i64, i64)> = HashSet::new();
    let tutorial_set: HashSet<i64> = tutorial_pubs.iter().copied().collect();
    for pub_id in 1..=npub {
        let authors = rng.gen_range(1..=3);
        for _ in 0..authors {
            let mut person = rng.gen_range(1..=np);
            while tutorial_set.contains(&pub_id) && person == pid::DEWITT {
                person = rng.gen_range(1..=np);
            }
            writes.insert((person, pub_id));
        }
    }
    // Plants: Widom authors Trio (pub 1); DeRose co-authors pub 3 with Gray.
    writes.insert((pid::WIDOM, 1));
    writes.remove(&(pid::DEWITT, 1));
    writes.insert((pid::DEROSE, 3));
    writes.insert((pid::GRAY, 3));
    // Keep constraint intact in case pub 3 was a tutorial (ids >= 3 only).
    if tutorial_set.contains(&3) {
        writes.remove(&(pid::DEWITT, 3));
    }
    // Plant: Agrawal (3), Chaudhuri (4) and Das (5) co-author publication 5,
    // so Q3's level-7 co-author star has at least one alive instance.
    for p in [3, 4, 5] {
        writes.insert((p, 5));
    }

    // published_in: ~90% of publications appear in exactly one conference;
    // DeRose-authored publications never appear in VLDB (Q4's non-answer).
    let derose_pubs: HashSet<i64> =
        writes.iter().filter(|(p, _)| *p == pid::DEROSE).map(|(_, pb)| *pb).collect();
    let mut published_in: HashSet<(i64, i64)> = HashSet::new();
    for pub_id in 1..=npub {
        if !rng.gen_ratio(9, 10) {
            continue;
        }
        let mut conf = rng.gen_range(1..=nconf);
        while derose_pubs.contains(&pub_id) && conf == vldb {
            conf = rng.gen_range(1..=nconf);
        }
        published_in.insert((pub_id, conf));
    }
    // Plant: Gray has a non-DeRose publication in VLDB (pub 4), so
    // "DeRose VLDB" connects through the co-author path at higher levels.
    if !derose_pubs.contains(&4) {
        writes.insert((pid::GRAY, 4));
        published_in.insert((4, vldb));
    }

    // affiliated_with: ~90% of persons, one organization each.
    let mut affiliated: HashSet<(i64, i64)> = HashSet::new();
    for person in 1..=np {
        if rng.gen_ratio(9, 10) {
            affiliated.insert((person, rng.gen_range(1..=norg)));
        }
    }

    // works_on: 1-3 topics per person; Hristidis works on Keyword Search
    // (topic 1), making Q2 an answer query.
    let mut works_on: HashSet<(i64, i64)> = HashSet::new();
    for person in 1..=np {
        for _ in 0..rng.gen_range(1..=3) {
            works_on.insert((person, rng.gen_range(1..=ntopic)));
        }
    }
    works_on.insert((pid::HRISTIDIS, 1));

    // serves_on: ~25% of persons serve on one committee; Gray serves on
    // SIGMOD (Q5 alive at the three-table level).
    let mut serves_on: HashSet<(i64, i64)> = HashSet::new();
    for person in 1..=np {
        if rng.gen_ratio(1, 4) {
            serves_on.insert((person, rng.gen_range(1..=nconf)));
        }
    }
    serves_on.insert((pid::GRAY, sigmod));

    // about: 1-2 topics per publication.
    let mut about: HashSet<(i64, i64)> = HashSet::new();
    for pub_id in 1..=npub {
        for _ in 0..rng.gen_range(1..=2) {
            about.insert((pub_id, rng.gen_range(1..=ntopic)));
        }
    }

    // cites: ~1.5 citations per publication, no self-citations.
    let mut cites: HashSet<(i64, i64)> = HashSet::new();
    for pub_id in 1..=npub {
        for _ in 0..rng.gen_range(0..=3) {
            let cited = rng.gen_range(1..=npub);
            if cited != pub_id {
                cites.insert((pub_id, cited));
            }
        }
    }

    // conf_topic: 2-4 topics per conference.
    let mut conf_topic: HashSet<(i64, i64)> = HashSet::new();
    for conf in 1..=nconf {
        for _ in 0..rng.gen_range(2..=4) {
            conf_topic.insert((conf, rng.gen_range(1..=ntopic)));
        }
    }

    // colleague_of: DBLife-style person-person relationship (~40% of persons
    // have one recorded colleague). This is what lets multi-person queries
    // like Q3 form candidate networks at level 5 (person—colleague—person—
    // colleague—person) rather than only through level-7 co-author stars.
    let mut colleague_of: HashSet<(i64, i64)> = HashSet::new();
    for person in 1..=np {
        if rng.gen_ratio(2, 5) {
            let other = rng.gen_range(1..=np);
            if other != person {
                colleague_of.insert((person, other));
            }
        }
    }
    // Plant: Agrawal (3) and Chaudhuri (4) are colleagues, so parts of Q3's
    // networks are alive below the co-author level.
    colleague_of.insert((3, 4));

    let tables: [(&str, &HashSet<(i64, i64)>); 9] = [
        ("writes", &writes),
        ("affiliated_with", &affiliated),
        ("works_on", &works_on),
        ("serves_on", &serves_on),
        ("published_in", &published_in),
        ("about", &about),
        ("cites", &cites),
        ("conf_topic", &conf_topic),
        ("colleague_of", &colleague_of),
    ];
    for (name, pairs) in tables {
        let mut sorted: Vec<(i64, i64)> = pairs.iter().copied().collect();
        sorted.sort_unstable(); // deterministic row order
        for (a, b) in sorted {
            db.insert_values(name, vec![Value::Int(a), Value::Int(b)]).expect("valid row");
        }
    }

    db.finalize();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_14_tables_5_textual() {
        let db = generate_dblife(&DblifeConfig::tiny());
        assert_eq!(db.table_count(), 14);
        let textual = db.tables().filter(|(_, t)| t.schema().has_text()).count();
        assert_eq!(textual, 5);
        assert_eq!(db.foreign_keys().len(), 18);
    }

    #[test]
    fn integrity_holds() {
        generate_dblife(&DblifeConfig::tiny()).check_integrity().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_dblife(&DblifeConfig::tiny());
        let b = generate_dblife(&DblifeConfig::tiny());
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table(a.table_id("writes").unwrap());
        let tb = b.table(b.table_id("writes").unwrap());
        assert_eq!(ta.len(), tb.len());
        for (rid, row) in ta.iter() {
            assert_eq!(row, tb.row(rid));
        }
        let c = generate_dblife(&DblifeConfig { seed: 99, ..DblifeConfig::tiny() });
        assert_ne!(
            a.table(a.table_id("writes").unwrap()).len(),
            0,
            "sanity: writes non-empty"
        );
        // Different seed almost surely differs in at least the row count of
        // some relationship table.
        let differs = (0..14).any(|t| a.table(t).len() != c.table(t).len());
        assert!(differs);
    }

    #[test]
    fn specials_are_planted() {
        let db = generate_dblife(&DblifeConfig::tiny());
        let idx = textindex_build(&db);
        for term in ["widom", "derose", "vldb", "sigmod", "tutorial", "trio", "probabilistic",
                     "histograms", "xml"] {
            assert!(idx.contains_term(term), "missing planted term {term}");
        }
        // Washington occurs in person, publication and organization.
        let tables = idx.tables_containing("washington");
        assert_eq!(tables.len(), 3);
    }

    fn textindex_build(db: &Database) -> textindex_shim::InvertedIndex {
        textindex_shim::InvertedIndex::build(db)
    }

    // datagen does not depend on textindex; a minimal shim suffices for the
    // planted-vocabulary assertions.
    mod textindex_shim {
        use relengine::{Database, TableId};
        use std::collections::{HashMap, HashSet};

        pub struct InvertedIndex {
            terms: HashMap<String, HashSet<TableId>>,
        }

        impl InvertedIndex {
            pub fn build(db: &Database) -> Self {
                let mut terms: HashMap<String, HashSet<TableId>> = HashMap::new();
                for (tid, table) in db.tables() {
                    for (_, row) in table.iter() {
                        for v in row.iter() {
                            if let Some(s) = v.as_text() {
                                for w in s.split(|c: char| !c.is_alphanumeric()) {
                                    if !w.is_empty() {
                                        terms.entry(w.to_lowercase()).or_default().insert(tid);
                                    }
                                }
                            }
                        }
                    }
                }
                InvertedIndex { terms }
            }

            pub fn contains_term(&self, t: &str) -> bool {
                self.terms.contains_key(t)
            }

            pub fn tables_containing(&self, t: &str) -> Vec<TableId> {
                self.terms.get(t).map(|s| s.iter().copied().collect()).unwrap_or_default()
            }
        }
    }

    #[test]
    fn derose_vldb_constraint() {
        let db = generate_dblife(&DblifeConfig::small());
        let writes = db.table(db.table_id("writes").unwrap());
        let pubin = db.table(db.table_id("published_in").unwrap());
        let derose_pubs: HashSet<i64> = writes
            .iter()
            .filter(|(_, r)| r[0].as_int() == Some(pid::DEROSE))
            .map(|(_, r)| r[1].as_int().expect("non-null"))
            .collect();
        assert!(!derose_pubs.is_empty());
        for (_, r) in pubin.iter() {
            let (p, c) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
            assert!(!(derose_pubs.contains(&p) && c == 1), "DeRose pub {p} in VLDB");
        }
        // But VLDB itself is non-empty through other authors.
        assert!(pubin.iter().any(|(_, r)| r[1].as_int() == Some(1)));
    }

    #[test]
    fn dewitt_tutorial_constraint() {
        let db = generate_dblife(&DblifeConfig::small());
        let pubs = db.table(db.table_id("publication").unwrap());
        let writes = db.table(db.table_id("writes").unwrap());
        let tutorials: HashSet<i64> = pubs
            .iter()
            .filter(|(_, r)| r[1].as_text().unwrap().to_lowercase().contains("tutorial"))
            .map(|(_, r)| r[0].as_int().unwrap())
            .collect();
        assert!(!tutorials.is_empty(), "no tutorials generated at small scale");
        for (_, r) in writes.iter() {
            let (p, pb) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
            assert!(!(p == pid::DEWITT && tutorials.contains(&pb)));
        }
    }

    #[test]
    fn clamping_prevents_tiny_configs() {
        let db = generate_dblife(&DblifeConfig {
            seed: 1,
            persons: 1,
            publications: 1,
            conferences: 1,
            organizations: 1,
            topics: 1,
        });
        assert!(db.table(db.table_id("person").unwrap()).len() >= 16);
        db.check_integrity().unwrap();
    }

    #[test]
    fn scale_presets_are_ordered() {
        let tiny = generate_dblife(&DblifeConfig::tiny()).total_rows();
        let small = generate_dblife(&DblifeConfig::small()).total_rows();
        assert!(tiny < small);
        assert!(tiny > 100);
    }
}
