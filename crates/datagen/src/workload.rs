//! The paper's keyword-query workload (Table 2).
//!
//! Ten queries over the DBLife schema, mixing person names (the hub of the
//! star schema), conference names, topic terms, and one deliberately
//! ambiguous keyword ("Washington", which occurs in Person, Publication and
//! Organization). The [`crate::dblife`] generator plants all of these terms,
//! so the workload exercises the same structural cases as the original
//! evaluation: many-MTN person queries (Q3), zero-MPAN answer queries (Q2),
//! queries empty at the two-table level but alive at higher levels (Q4, Q6),
//! and multi-interpretation queries (Q8).

/// One benchmark keyword query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadQuery {
    /// Query id as in the paper ("Q1".."Q10").
    pub id: &'static str,
    /// The keyword string the user types.
    pub text: &'static str,
}

/// The ten queries of Table 2.
pub fn paper_queries() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery { id: "Q1", text: "Widom Trio" },
        WorkloadQuery { id: "Q2", text: "Hristidis Keyword Search" },
        WorkloadQuery { id: "Q3", text: "Agrawal Chaudhuri Das" },
        WorkloadQuery { id: "Q4", text: "DeRose VLDB" },
        WorkloadQuery { id: "Q5", text: "Gray SIGMOD" },
        WorkloadQuery { id: "Q6", text: "DeWitt tutorial" },
        WorkloadQuery { id: "Q7", text: "Probabilistic Data" },
        WorkloadQuery { id: "Q8", text: "Probabilistic Data Washington" },
        WorkloadQuery { id: "Q9", text: "SIGMOD XML" },
        WorkloadQuery { id: "Q10", text: "Stream data histograms" },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_queries_with_paper_ids() {
        let qs = paper_queries();
        assert_eq!(qs.len(), 10);
        assert_eq!(qs[0].id, "Q1");
        assert_eq!(qs[9].id, "Q10");
        // Three-keyword queries are Q2, Q3, Q8, Q10 (the "complicated" ones
        // in Figures 14/15).
        let three: Vec<&str> = qs
            .iter()
            .filter(|q| q.text.split_whitespace().count() == 3)
            .map(|q| q.id)
            .collect();
        assert_eq!(three, vec!["Q2", "Q3", "Q8", "Q10"]);
    }
}
