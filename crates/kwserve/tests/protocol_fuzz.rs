//! Decoder fuzzing: the `lattice_io` lesson applied to the wire protocol.
//!
//! Every request/response codec (and the canonical report codec) is driven
//! through an every-byte truncation corpus and a bit-flip corpus built from
//! real encoded frames. The contract under attack input is: **typed
//! [`WireError`]s, never a panic, never an allocation sized by attacker
//! bytes** — length fields are validated against the remaining input (and
//! `MAX_FRAME`) before any buffer is reserved, so a flipped length byte
//! costs a refusal, not memory.

use std::io::Cursor;
use std::time::Duration;

use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::traversal::StrategyKind;
use kwserve::protocol::{
    decode_report, decode_request, decode_response, encode_report, encode_request,
    encode_response, read_frame, ErrorCode, FrameReader, Request, Response, MAX_FRAME,
};
use relengine::{DataType, Database, DatabaseBuilder, Value};

/// Minimal saffron-candle store (same shape as the loopback fixture) — just
/// enough to mint a real report payload for the report-codec corpus.
fn store_db() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
    b.foreign_key("item", "color_id", "color", "id").unwrap();
    let mut db = b.finish().unwrap();
    db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
    db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
    db.insert_values("item", vec![Value::Int(1), Value::text("pillar"), Value::Int(1), Value::Int(1)])
        .unwrap();
    db
}

fn request_corpus() -> Vec<Vec<u8>> {
    [
        Request::Hello { tenant: "acme".into(), pin_epoch: Some(3) },
        Request::Hello { tenant: String::new(), pin_epoch: None },
        Request::Debug { strategy: None, query: "saffron candle".into() },
        Request::Debug { strategy: Some(StrategyKind::BottomUp), query: "x".into() },
        Request::Metrics,
        Request::Bye,
    ]
    .iter()
    .map(encode_request)
    .collect()
}

fn response_corpus() -> Vec<Vec<u8>> {
    [
        Response::Welcome { session_id: 42, epoch: 9 },
        Response::Report { degraded: true, server_ns: 123_456, payload: vec![9, 8, 7, 6] },
        Response::MetricsJson { json: "{\"a\":1}".into() },
        Response::ByeAck,
        Response::error(ErrorCode::Malformed, "bad"),
        Response::overloaded(Duration::from_millis(250), "busy"),
    ]
    .iter()
    .map(encode_response)
    .collect()
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for payload in request_corpus() {
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "request prefix of {cut}/{} bytes must not decode",
                payload.len()
            );
        }
        assert!(decode_request(&payload).is_ok(), "whole frame round-trips");
    }
    for payload in response_corpus() {
        for cut in 0..payload.len() {
            assert!(
                decode_response(&payload[..cut]).is_err(),
                "response prefix of {cut}/{} bytes must not decode",
                payload.len()
            );
        }
        assert!(decode_response(&payload).is_ok(), "whole frame round-trips");
    }
}

#[test]
fn every_truncation_of_a_report_payload_is_a_typed_error() {
    let system = NonAnswerDebugger::new(
        store_db(),
        DebugConfig { max_joins: 2, ..DebugConfig::default() },
    )
    .unwrap();
    let payload = encode_report(&system.debug("saffron candle").unwrap());
    assert!(decode_report(&payload).is_ok());
    for cut in 0..payload.len() {
        assert!(
            decode_report(&payload[..cut]).is_err(),
            "report prefix of {cut}/{} bytes must not decode",
            payload.len()
        );
    }
}

/// Bit flips must never panic or over-allocate; they may legally decode
/// (a flipped byte inside a string is still a string) or fail typed.
#[test]
fn bit_flips_never_panic_any_decoder() {
    let system = NonAnswerDebugger::new(
        store_db(),
        DebugConfig { max_joins: 2, ..DebugConfig::default() },
    )
    .unwrap();
    let report = encode_report(&system.debug("saffron candle").unwrap());
    for payload in request_corpus() {
        fuzz_bits(&payload, |bytes| {
            let _ = decode_request(bytes);
        });
    }
    for payload in response_corpus() {
        fuzz_bits(&payload, |bytes| {
            let _ = decode_response(bytes);
        });
    }
    fuzz_bits(&report, |bytes| {
        let _ = decode_report(bytes);
    });
}

fn fuzz_bits(payload: &[u8], check: impl Fn(&[u8])) {
    let mut mutated = payload.to_vec();
    for i in 0..mutated.len() {
        for mask in [0x01u8, 0x80] {
            mutated[i] ^= mask;
            check(&mutated);
            mutated[i] ^= mask;
        }
    }
    debug_assert_eq!(mutated, payload, "fuzzing restores the frame");
}

/// A hostile length prefix is refused before any allocation happens —
/// `read_frame`/`FrameReader` reject it from the four prefix bytes alone.
#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    for claimed in [MAX_FRAME + 1, u32::MAX] {
        let mut wire = claimed.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(&wire)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "typed refusal");

        let mut reader = FrameReader::new();
        let err = reader.poll(&mut Cursor::new(&wire)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(reader.bytes_read() <= 4 + 16, "only the prefix was consumed");
    }
}
