//! Cross-tenant shared-cache soak: correctness of the process-wide
//! evaluation cache under multi-tenant load, probe faults and a hostile
//! network.
//!
//! Two tenants with overlapping keyword workloads hammer a
//! [`ServeConfig::shared_cache`]-enabled server across seeded chaos
//! schedules and worker counts. The invariants:
//!
//! * the serving layer's books still balance (accepted = shed + admitted +
//!   rejected + failed; no permit or gate-slot leaks) with the shared store
//!   in the probe path,
//! * **zero chaos-polluted entries**: probe faults abort before execution,
//!   so after any amount of chaos the surviving store must reproduce a
//!   clean uncached reference exactly — same answers, non-answers, MPANs,
//!   samples and rendered report, with every skipped probe accounted by the
//!   shortcut identity,
//! * the `shared_cache_*` wire gauges agree with the store itself, and the
//!   `cache_bytes` gauge equals a full recount over every shard,
//! * with the network quiet, a shared-cache server's reports are
//!   observably identical to an uncached server's — warm verdict-cache
//!   responses included.

use std::time::{Duration, Instant};

use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::DebugReport;
use kwserve::{
    ChaosConfig, DebugClient, ReconnectPolicy, ResilientClient, ServeConfig, Server,
    SharedCacheConfig, TenantPolicy, TenantRegistry,
};
use relengine::{DataType, Database, DatabaseBuilder, FaultConfig, Value};

/// The saffron-candle store of the paper's Figure 2 (same fixture as the
/// loopback and chaos suites).
fn store_db() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
    b.foreign_key("item", "color_id", "color", "id").unwrap();
    let mut db = b.finish().unwrap();
    db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
    db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
    db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
    db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(1), Value::text("scented pillar"), Value::Int(1), Value::Int(2)],
    )
    .unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(2), Value::text("scented burner"), Value::Int(2), Value::Int(1)],
    )
    .unwrap();
    db
}

fn cached_config() -> DebugConfig {
    DebugConfig { max_joins: 2, eval_cache: true, ..DebugConfig::default() }
}

fn uncached_config() -> DebugConfig {
    DebugConfig { max_joins: 2, ..DebugConfig::default() }
}

/// Per-tenant workloads that overlap on "saffron", "red" and "candle" — the
/// sharing the store exists to exploit.
const WORKLOADS: [(&str, &[&str]); 2] = [
    ("acme", &["saffron candle", "red candle", "scented oil", "saffron candle"]),
    ("nova", &["red candle", "saffron oil", "scented candle", "saffron candle"]),
];

/// Blanks `(12 SQL queries, 1.3ms)` → `(q SQL queries, t)` in rendered
/// reports; cache shortcuts legitimately shrink the executed-query count.
fn scrub(s: &str) -> String {
    s.lines()
        .map(|l| match l.find(" SQL queries, ") {
            Some(i) => match l[..i].rfind('(') {
                Some(j) => format!("{}(q SQL queries, t)", &l[..j]),
                None => l.to_string(),
            },
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A shared-cache report must carry the same answers as the uncached
/// baseline. With `check_identity`, every skipped probe must additionally
/// be accounted by the shortcut identity — only valid when both sides run
/// the same fixed SBH prior (the serving default turns on the shared online
/// `p_a` estimator, which legitimately reorders the frontier and with it
/// the executed-probe count, while answers stay bit-identical).
fn assert_answers_match(off: &DebugReport, on: &DebugReport, ctx: &str, check_identity: bool) {
    assert_eq!(scrub(&on.to_string()), scrub(&off.to_string()), "{ctx}: rendered report");
    for (a, b) in on.interpretations.iter().zip(&off.interpretations) {
        assert_eq!(a.answers, b.answers, "{ctx}: answers");
        assert_eq!(a.non_answers, b.non_answers, "{ctx}: non-answers + MPANs");
        assert_eq!(a.unknown, b.unknown, "{ctx}: unknown");
        if check_identity {
            assert_eq!(
                a.probes.probes_executed
                    + a.probes.subtree_cache_dead_shortcuts
                    + a.probes.verdict_cache_hits,
                b.probes.probes_executed,
                "{ctx}: every skipped probe is a cache shortcut"
            );
        }
    }
}

/// One soak round: a shared-cache server under network chaos *and*
/// probe-level faults, two tenants × two resilient clients each. Returns
/// queries answered over the wire.
fn soak_round(seed: u64, workers: usize) -> u64 {
    let system = NonAnswerDebugger::new(store_db(), cached_config()).unwrap();
    let chaos = ChaosConfig {
        seed,
        read_stall_per_mille: 30,
        stall: Duration::from_millis(1),
        bitflip_per_mille: 10,
        partial_write_per_mille: 150,
        reset_per_mille: 25,
        panic_per_mille: 40,
    };
    let config = ServeConfig {
        workers,
        poll_interval: Duration::from_millis(5),
        max_inflight: 4,
        frame_deadline: Duration::from_millis(300),
        write_deadline: Duration::from_secs(1),
        retry_after: Duration::from_millis(5),
        chaos: Some(chaos),
        // Probe-level faults too: sessions abort ~30% of probes mid-flight,
        // the worst case for a store every tenant reads.
        debug: DebugConfig { chaos: Some(FaultConfig::transient(seed, 300)), ..cached_config() },
        shared_cache: Some(SharedCacheConfig::default()),
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .unwrap();
    let addr = server.addr();

    let policy = ReconnectPolicy {
        max_retries: 25,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        io_timeout: Some(Duration::from_millis(400)),
    };
    let mut answered = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = WORKLOADS
            .iter()
            .flat_map(|(tenant, queries)| (0..2).map(move |c| (*tenant, *queries, c)))
            .map(|(tenant, queries, c)| {
                s.spawn(move || {
                    let mut ok = 0u64;
                    if let Ok(mut client) = ResilientClient::connect(addr, tenant, policy) {
                        for i in 0..8usize {
                            if let Ok(wire) = client.debug(queries[(i + c) % queries.len()]) {
                                assert!(!wire.canonical.is_empty());
                                ok += 1;
                            }
                        }
                        let _ = client.close();
                    }
                    ok
                })
            })
            .collect();
        for handle in handles {
            answered += handle.join().expect("no panic escapes a client");
        }
    });

    // No gate-slot or permit leaks with the shared store in the probe path.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.inflight() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.inflight(), 0, "gate slots leaked (seed {seed}, workers {workers})");
    for (tenant, _) in WORKLOADS {
        assert_eq!(server.registry().active_sessions(tenant), 0, "leaked session permit");
        assert_eq!(server.registry().active_requests(tenant), 0, "leaked request permit");
    }

    let store = server.shared_cache().expect("shared_cache is configured").clone();
    let m = server.shutdown();
    let accepted = m.connections_accepted.into_inner();
    let shed = m.sessions_shed.into_inner();
    let admitted = m.sessions_admitted.into_inner();
    let rejected = m.sessions_rejected.into_inner();
    let failed = m.conns_failed.into_inner();
    assert_eq!(
        accepted,
        shed + admitted + rejected + failed,
        "accounting must balance (seed {seed}, workers {workers})"
    );
    assert_eq!(admitted, m.sessions_closed.into_inner(), "every admitted session closes");
    // The shutdown snapshot's gauges are the store's own numbers.
    assert_eq!(
        m.shared_cache_bytes.load(std::sync::atomic::Ordering::Relaxed),
        store.bytes(),
        "wire gauge must mirror the store"
    );
    assert_eq!(
        store.bytes(),
        store.handle().accounted_bytes(),
        "cache_bytes accounting identity after chaos churn (seed {seed}, workers {workers})"
    );

    // Zero chaos-polluted entries: a clean session adopting the chaos-warmed
    // store must reproduce a clean uncached reference exactly.
    assert!(store.bytes() > 0, "the chaotic round still cached completed work");
    let mut verify_parts = system.shared_parts();
    verify_parts.adopt_eval_cache(store).expect("same (db_id, epoch) identity");
    let warmed = NonAnswerDebugger::from_shared(verify_parts, cached_config()).unwrap();
    let reference = NonAnswerDebugger::new(store_db(), uncached_config()).unwrap();
    for (_, queries) in WORKLOADS {
        for query in queries {
            let base = reference.debug(query).expect("reference runs");
            let cached = warmed.debug(query).expect("warmed run");
            assert_answers_match(
                &base,
                &cached,
                &format!("{query:?} post-chaos (seed {seed}, workers {workers})"),
                true,
            );
        }
    }
    answered
}

/// The seeded soak: 2 tenants with overlapping keywords, 3 chaos seeds,
/// workers 1 and 4.
#[test]
fn shared_cache_survives_cross_tenant_chaos() {
    let mut total_answered = 0u64;
    for workers in [1usize, 4] {
        for seed in [11u64, 12, 13] {
            total_answered += soak_round(seed, workers);
        }
    }
    assert!(total_answered > 0, "some client exchanges must complete under chaos");
}

/// Network quiet: a shared-cache server's reports are observably identical
/// to an uncached server's for both tenants, including the warm pass where
/// the verdict cache answers without touching the engine — and the live
/// `shared_cache_*` gauges cross the wire.
#[test]
fn shared_reports_match_uncached_server_for_every_tenant() {
    let sys_on = NonAnswerDebugger::new(store_db(), cached_config()).unwrap();
    let on = Server::start(
        sys_on.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        ServeConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            debug: cached_config(),
            shared_cache: Some(SharedCacheConfig::default()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let sys_off = NonAnswerDebugger::new(store_db(), uncached_config()).unwrap();
    let off = Server::start(
        sys_off.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        ServeConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            debug: uncached_config(),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut warm_verdict_hits = 0u64;
    for (tenant, queries) in WORKLOADS {
        let mut client_on = DebugClient::connect(on.addr(), tenant).unwrap();
        let mut client_off = DebugClient::connect(off.addr(), tenant).unwrap();
        for pass in 0..2 {
            for query in queries {
                let wire_on = client_on.debug(query).expect("shared server answers");
                let wire_off = client_off.debug(query).expect("uncached server answers");
                assert_answers_match(
                    &wire_off.report,
                    &wire_on.report,
                    &format!("{tenant}/{query:?} pass {pass}"),
                    false, // serving default enables online p_a (see helper)
                );
                if pass == 1 {
                    warm_verdict_hits += wire_on.report.probes().verdict_cache_hits;
                }
            }
        }
        let json = client_on.metrics_json().expect("metrics over the wire");
        assert!(
            !json.contains("\"shared_cache_hits\":0,"),
            "warm traffic must register shared hits in the wire gauges: {json}"
        );
        client_on.bye().unwrap();
        client_off.bye().unwrap();
    }
    assert!(
        warm_verdict_hits > 0,
        "warm passes must be answered from the shared verdict cache"
    );
    let store = on.shared_cache().expect("configured").clone();
    assert!(store.hits() > 0, "cross-tenant reuse must register on the store");
    assert_eq!(store.bytes(), store.handle().accounted_bytes(), "accounting identity");
    on.shutdown();
    off.shutdown();
}
