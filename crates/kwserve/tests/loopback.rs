//! Loopback integration tests: a real server on 127.0.0.1, real sockets,
//! and the central guarantee of the serving layer — a report that crosses
//! the wire is **bit-identical** to the one a direct library call produces.
//!
//! The comparison works at the canonical-payload level
//! ([`kwserve::protocol::encode_report`]): wall-clock noise is excluded by
//! construction, so `wire.canonical == encode_report(direct)` proves the
//! server computed exactly the same classification, MPAN sets, sample
//! tuples and deterministic counters as the library, across concurrent
//! tenant sessions and degraded (budget-capped) runs alike.

use std::time::Duration;

use kwdebug::budget::ProbeBudget;
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::traversal::StrategyKind;
use kwserve::protocol::{
    self, encode_report, read_frame, write_frame, ErrorCode, Request, Response,
};
use kwserve::{ClientError, DebugClient, ServeConfig, Server, TenantPolicy, TenantRegistry};
use relengine::{DataType, Database, DatabaseBuilder, Value};

/// The saffron-candle store of the paper's Figure 2 (same fixture as the
/// `kwdebug::debugger` tests): small enough for fast loopback runs, rich
/// enough to produce answers, non-answers and MPANs.
fn store_db() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
    b.foreign_key("item", "color_id", "color", "id").unwrap();
    let mut db = b.finish().unwrap();
    db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
    db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
    db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
    db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(1), Value::text("scented pillar"), Value::Int(1), Value::Int(2)],
    )
    .unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(2), Value::text("scented burner"), Value::Int(2), Value::Int(1)],
    )
    .unwrap();
    db
}

fn base_config() -> DebugConfig {
    DebugConfig { max_joins: 2, eval_cache: true, ..DebugConfig::default() }
}

fn quick_serve_config() -> ServeConfig {
    ServeConfig {
        poll_interval: Duration::from_millis(10),
        debug: base_config(),
        ..ServeConfig::default()
    }
}

/// The query mix every session runs: answers, non-answers, a repeat (which
/// exercises the session evaluation cache) and an unknown keyword.
const QUERIES: &[&str] = &["saffron candle", "red candle", "scented oil", "saffron candle"];

#[test]
fn concurrent_tenant_sessions_match_direct_library_calls() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let parts = system.shared_parts();
    let server = Server::start(
        parts.clone(),
        TenantRegistry::new(TenantPolicy::default()),
        quick_serve_config(),
    )
    .unwrap();
    let addr = server.addr();

    // Two tenants drive their sessions concurrently, end to end.
    std::thread::scope(|s| {
        for tenant in ["acme", "globex"] {
            let parts = parts.clone();
            s.spawn(move || {
                let mut client = DebugClient::connect(addr, tenant).expect("admitted");
                // The reference session: same substrate, same config, same
                // query sequence — sequence matters because the session
                // eval cache makes later counters depend on earlier queries.
                let direct = NonAnswerDebugger::from_shared(parts, base_config()).unwrap();
                for query in QUERIES {
                    let wire = client.debug(query).expect("served");
                    let expect = direct.debug(query).expect("library call");
                    assert_eq!(
                        wire.canonical,
                        encode_report(&expect),
                        "tenant {tenant}: wire report for {query:?} must be bit-identical"
                    );
                    assert!(!wire.degraded, "unlimited budget never degrades");
                    assert_eq!(
                        wire.report.answer_count(),
                        expect.answer_count(),
                        "decoded report agrees"
                    );
                }
                // Per-request strategy override takes the same path.
                let wire = client
                    .debug_with_strategy("saffron candle", Some(StrategyKind::BottomUp))
                    .expect("served");
                let expect = direct
                    .debug_with_strategy("saffron candle", StrategyKind::BottomUp)
                    .expect("library call");
                assert_eq!(wire.canonical, encode_report(&expect), "strategy override");
                client.bye().expect("clean goodbye");
            });
        }
    });

    let metrics = server.shutdown();
    assert_eq!(metrics.sessions_admitted.into_inner(), 2);
    assert_eq!(metrics.queries_ok.into_inner(), 2 * (QUERIES.len() as u64 + 1));
    assert_eq!(metrics.reports_degraded.into_inner(), 0);
}

#[test]
fn tenant_quota_rejects_then_releases() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let registry = TenantRegistry::new(TenantPolicy::default())
        .with_tenant("small", TenantPolicy::sessions(1));
    let server = Server::start(system.shared_parts(), registry, quick_serve_config()).unwrap();
    let addr = server.addr();

    let first = DebugClient::connect(addr, "small").expect("first session fits");
    match DebugClient::connect(addr, "small") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::QuotaExhausted);
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // Another tenant is unaffected — quotas are per tenant.
    DebugClient::connect(addr, "other").expect("different tenant fits").bye().unwrap();

    // Ending the first session returns the slot (poll for the server to
    // notice the disconnect).
    first.bye().expect("clean goodbye");
    let mut readmitted = None;
    for _ in 0..100 {
        match DebugClient::connect(addr, "small") {
            Ok(c) => {
                readmitted = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    readmitted.expect("slot released after goodbye");

    let metrics = server.shutdown();
    assert!(metrics.sessions_rejected.into_inner() >= 1);
}

#[test]
fn budget_degraded_partial_report_crosses_the_wire() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let parts = system.shared_parts();
    let capped = ProbeBudget::probes(0);
    let registry = TenantRegistry::new(TenantPolicy::default())
        .with_tenant("throttled", TenantPolicy::default().with_budget(capped));
    let server = Server::start(parts.clone(), registry, quick_serve_config()).unwrap();

    let mut client = DebugClient::connect(server.addr(), "throttled").unwrap();
    let wire = client.debug("saffron candle").expect("degraded, not failed");
    assert!(wire.degraded, "budget of zero probes must degrade the report");
    assert!(wire.report.unknown_count() > 0, "MTNs reported, just unclassified");
    assert!(!wire.report.is_complete());

    // Degraded soundness carries over the wire bit-for-bit too.
    let direct =
        NonAnswerDebugger::from_shared(parts, DebugConfig { budget: capped, ..base_config() })
            .unwrap();
    let expect = direct.debug("saffron candle").unwrap();
    assert_eq!(wire.canonical, encode_report(&expect));

    // A tenant with a (generous) deadline budget stays complete.
    let mut ok = DebugClient::connect(server.addr(), "anyone").unwrap();
    assert!(!ok.debug("saffron candle").unwrap().degraded);

    let metrics = server.shutdown();
    assert_eq!(metrics.reports_degraded.into_inner(), 1);
}

#[test]
fn protocol_violations_get_typed_errors() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        quick_serve_config(),
    )
    .unwrap();
    let addr = server.addr();

    // Request before Hello → NotReady.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &protocol::encode_request(&Request::Metrics)).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("server answers");
        match protocol::decode_response(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotReady),
            other => panic!("expected NotReady, got {other:?}"),
        }
    }
    // Garbage opcode → Malformed, connection closed, server survives.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &[0x7C, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("server answers");
        match protocol::decode_response(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(read_frame(&mut stream).unwrap().is_none(), "server closed");
    }
    // Wrong protocol version → UnsupportedVersion.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let mut hello = protocol::encode_request(&Request::Hello { tenant: "t".into(), pin_epoch: None });
        hello[5] = 0x7F; // clobber the version field
        write_frame(&mut stream, &hello).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("server answers");
        match protocol::decode_response(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }
    // An empty query is a per-request error: the session survives it.
    {
        let mut client = DebugClient::connect(addr, "t").unwrap();
        match client.debug("  !! ") {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
            other => panic!("expected BadQuery, got {other:?}"),
        }
        assert!(client.debug("red candle").is_ok(), "session still serves");
        client.bye().unwrap();
    }

    let metrics = server.shutdown();
    assert!(metrics.frames_rejected.into_inner() >= 2);
    assert_eq!(metrics.queries_rejected.into_inner(), 1);
}

#[test]
fn session_metrics_record_is_stable_json() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        quick_serve_config(),
    )
    .unwrap();
    let mut client = DebugClient::connect(server.addr(), "acme").unwrap();
    client.debug("saffron candle").unwrap();
    client.debug("red candle").unwrap();
    let json = client.metrics_json().unwrap();
    assert!(json.starts_with("{\"server\":{"), "composite record leads with server: {json}");
    assert!(json.contains("\"session\":{\"experiment\":\"kwserve\""), "{json}");
    assert!(json.contains("\"queries_ok\":2"), "server counters live: {json}");
    assert!(json.contains("\"sessions_shed\":0"), "{json}");
    assert!(json.contains("\"variant\":\"tenant=acme;session="), "{json}");
    assert!(json.contains("\"query\":\"red candle\""), "last query served: {json}");
    assert!(json.contains("\"probes\":{"), "{json}");
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn graceful_shutdown_notifies_idle_sessions() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        quick_serve_config(),
    )
    .unwrap();
    let addr = server.addr();

    let mut client = DebugClient::connect(addr, "acme").unwrap();
    client.debug("saffron candle").unwrap();

    // Shut down while the session sits idle. The worker notices at its next
    // poll tick, sends `ShuttingDown` to the client, and joins — so by the
    // time `shutdown` returns, the notice sits in our receive buffer.
    let metrics = server.shutdown();
    assert_eq!(metrics.queries_ok.into_inner(), 1);
    match client.debug("red candle") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        // Benign race: the socket may already have reset under us.
        Err(ClientError::Io(_) | ClientError::Protocol(_)) => {}
        Ok(_) => panic!("server accepted work after shutdown"),
        Err(other) => panic!("unexpected failure mode: {other}"),
    }

    // The port no longer serves new sessions.
    assert!(DebugClient::connect(addr, "acme").is_err());
}
