//! Differential suite for cross-session batched probing (DESIGN.md §14).
//!
//! The contract under test: attaching a [`WaveExchange`] to any set of
//! concurrent sessions changes *which session executes* each probe and
//! *when*, but never what any session reports. Every session's canonical
//! report bytes (probe-work counters scrubbed — batching moves work between
//! sessions by design) must be identical to an unbatched run of the same
//! session config. Across every traversal strategy, sequential and parallel
//! drivers, evaluation cache on and off, budget-cut partial reports, probe
//! faults, and sessions dying mid-wave. Any divergence means a verdict was
//! misrouted, double-charged, or fabricated.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use kwdebug::batch::BatchConfig;
use kwdebug::budget::ProbeBudget;
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::metrics::ProbeCounters;
use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;
use kwdebug::WaveExchange;
use kwserve::protocol::encode_report;
use kwserve::{DebugClient, ServeConfig, Server, TenantPolicy, TenantRegistry};
use relengine::{DataType, Database, DatabaseBuilder, FaultConfig, Value};

const STRATEGIES: [StrategyKind; 6] = [
    StrategyKind::BottomUp,
    StrategyKind::TopDown,
    StrategyKind::BottomUpWithReuse,
    StrategyKind::TopDownWithReuse,
    StrategyKind::ScoreBasedHeuristic,
    StrategyKind::BruteForce,
];

/// Overlapping workload: every session runs the same sequence, so merged
/// waves are full of cross-session duplicates — the worst case for verdict
/// fan-out bookkeeping.
const QUERIES: [&str; 4] = ["saffron candle", "red candle", "scented oil", "saffron oil"];

/// The saffron-candle store of the paper's Figure 2 (same fixture as the
/// loopback and soak suites).
fn store_db() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
    b.foreign_key("item", "color_id", "color", "id").unwrap();
    let mut db = b.finish().unwrap();
    db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
    db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
    db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
    db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(1), Value::text("scented pillar"), Value::Int(1), Value::Int(2)],
    )
    .unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(2), Value::text("scented burner"), Value::Int(2), Value::Int(1)],
    )
    .unwrap();
    db
}

/// Canonical bytes with every probe-work counter scrubbed: which session
/// executed a probe versus inherited its verdict (`probes_executed` vs
/// `coalesced_probes`, cache hits, SQL counts) legitimately depends on
/// cross-session timing — the *semantic* sections (keyword tables, answers,
/// non-answers, MPANs, unknown, prune stats) must not.
fn canonical(mut report: DebugReport) -> Vec<u8> {
    for i in &mut report.interpretations {
        i.sql_queries = 0;
        i.probes = ProbeCounters::default();
    }
    encode_report(&report)
}

fn batch_config() -> BatchConfig {
    // A short window bounds how long a wave stalls when a registered peer
    // is between queries (or finished early on a budget cut / hard fault).
    BatchConfig { window_us: 5_000, max_wave: 256, min_sessions: 2 }
}

fn session_config(strategy: StrategyKind, workers: usize, cache: bool) -> DebugConfig {
    DebugConfig { max_joins: 2, strategy, workers, eval_cache: cache, ..DebugConfig::default() }
}

/// Runs `tenants` barrier-aligned sessions over one exchange, asserting each
/// session's every report matches `truth`. Returns nothing on success; the
/// exchange must be fully drained afterwards.
fn run_batched_matrix_cell(
    system: &NonAnswerDebugger,
    config: DebugConfig,
    truth: &[Vec<u8>],
    tenants: usize,
    exchange: &Arc<WaveExchange>,
    ctx: &str,
) {
    let barrier = Barrier::new(tenants);
    std::thread::scope(|s| {
        for t in 0..tenants {
            let exchange = Arc::clone(exchange);
            let barrier = &barrier;
            s.spawn(move || {
                let mut dbg = NonAnswerDebugger::from_shared(system.shared_parts(), config)
                    .expect("session over shared substrate");
                dbg.set_wave_exchange(Some(exchange));
                barrier.wait();
                for (qi, q) in QUERIES.iter().enumerate() {
                    let got = canonical(dbg.debug(q).expect("batched debug runs"));
                    assert_eq!(got, truth[qi], "{ctx}: tenant {t} diverged on {q:?}");
                }
            });
        }
    });
    assert_eq!(exchange.active_sessions(), 0, "{ctx}: leaked exchange subscription");
    assert_eq!(exchange.pending_cells(), 0, "{ctx}: leaked probe cell");
}

/// The tentpole invariant: batching is invisible to reports — across every
/// strategy, sequential and parallel drivers, and eval cache on/off.
#[test]
fn batched_reports_match_unbatched_across_the_matrix() {
    let db = store_db();
    let mut merged_total = 0u64;
    let mut coalesced_total = 0u64;
    for strategy in STRATEGIES {
        for workers in [1usize, 4] {
            for cache in [false, true] {
                let config = session_config(strategy, workers, cache);
                let system = NonAnswerDebugger::new(db.clone(), config).unwrap();
                // Unbatched ground truth, one session per query so no
                // intra-session warmth leaks into the reference.
                let truth: Vec<Vec<u8>> = QUERIES
                    .iter()
                    .map(|q| {
                        let s =
                            NonAnswerDebugger::from_shared(system.shared_parts(), config).unwrap();
                        canonical(s.debug(q).expect("unbatched debug runs"))
                    })
                    .collect();
                let exchange = Arc::new(WaveExchange::new(batch_config()));
                let ctx = format!("{} workers={workers} cache={cache}", strategy.name());
                run_batched_matrix_cell(&system, config, &truth, 3, &exchange, &ctx);
                merged_total += exchange.merged_waves();
                coalesced_total += exchange.coalesced_probes();
            }
        }
    }
    // The suite must actually exercise merging, not just bypass everywhere.
    assert!(merged_total > 0, "no wave was ever merged across the whole matrix");
    assert!(coalesced_total > 0, "no probe was ever coalesced across the whole matrix");
}

/// Budget-cut partials: followers reserve their own budget slot at their
/// original dispatch position before parking, so a `max_probes` cut lands on
/// exactly the same probe batched as unbatched — the `Unknown` frontier of a
/// degraded report is part of the equivalence contract.
#[test]
fn budget_partials_stay_identical_when_batched() {
    let db = store_db();
    for max_probes in [1u64, 3, 7, 15] {
        for workers in [1usize, 4] {
            let config = DebugConfig {
                budget: ProbeBudget::probes(max_probes),
                ..session_config(StrategyKind::BottomUpWithReuse, workers, false)
            };
            let system = NonAnswerDebugger::new(db.clone(), config).unwrap();
            let truth: Vec<Vec<u8>> = QUERIES
                .iter()
                .map(|q| {
                    let s = NonAnswerDebugger::from_shared(system.shared_parts(), config).unwrap();
                    canonical(s.debug(q).expect("budgeted debug runs"))
                })
                .collect();
            let exchange = Arc::new(WaveExchange::new(batch_config()));
            let ctx = format!("max_probes={max_probes} workers={workers}");
            run_batched_matrix_cell(&system, config, &truth, 3, &exchange, &ctx);
        }
    }
}

/// Transient probe faults recover by retry before any verdict is published,
/// so a fully chaos-faulted batched fleet still reproduces the clean
/// unbatched reference — no faulted execution may leak a verdict to a
/// follower.
#[test]
fn transient_chaos_changes_no_batched_report() {
    let db = store_db();
    let clean = session_config(StrategyKind::ScoreBasedHeuristic, 4, true);
    let system = NonAnswerDebugger::new(db.clone(), clean).unwrap();
    let truth: Vec<Vec<u8>> = QUERIES
        .iter()
        .map(|q| {
            let s = NonAnswerDebugger::from_shared(system.shared_parts(), clean).unwrap();
            canonical(s.debug(q).expect("clean debug runs"))
        })
        .collect();
    for seed in [7u64, 8] {
        let faulted = DebugConfig { chaos: Some(FaultConfig::transient(seed, 250)), ..clean };
        let exchange = Arc::new(WaveExchange::new(batch_config()));
        run_batched_matrix_cell(
            &system,
            faulted,
            &truth,
            3,
            &exchange,
            &format!("transient chaos seed {seed}"),
        );
    }
}

/// A session dying mid-wave (permanent probe faults abort its traversal
/// while it owns in-flight cells) must orphan its cells, not wedge or
/// corrupt its peers: clean sessions re-execute orphaned probes locally and
/// still report the exact unbatched truth, and the exchange drains.
#[test]
fn a_session_dying_mid_wave_never_corrupts_its_peers() {
    let db = store_db();
    let clean = session_config(StrategyKind::BottomUpWithReuse, 1, false);
    let system = NonAnswerDebugger::new(db.clone(), clean).unwrap();
    let truth: Vec<Vec<u8>> = QUERIES
        .iter()
        .map(|q| {
            let s = NonAnswerDebugger::from_shared(system.shared_parts(), clean).unwrap();
            canonical(s.debug(q).expect("clean debug runs"))
        })
        .collect();
    let dying = DebugConfig {
        chaos: Some(FaultConfig {
            seed: 99,
            transient_per_mille: 0,
            permanent_per_mille: 400,
            latency_per_mille: 0,
            latency: Duration::ZERO,
            fail_first_transient: 0,
        }),
        ..clean
    };
    let exchange = Arc::new(WaveExchange::new(batch_config()));
    let barrier = Barrier::new(3);
    let system = &system;
    std::thread::scope(|s| {
        // Two clean survivors...
        for t in 0..2 {
            let exchange = Arc::clone(&exchange);
            let barrier = &barrier;
            let truth = &truth;
            s.spawn(move || {
                let mut dbg =
                    NonAnswerDebugger::from_shared(system.shared_parts(), clean).unwrap();
                dbg.set_wave_exchange(Some(exchange));
                barrier.wait();
                for (qi, q) in QUERIES.iter().enumerate() {
                    let got = canonical(dbg.debug(q).expect("survivor debug runs"));
                    assert_eq!(got, truth[qi], "survivor {t} corrupted by a dying peer on {q:?}");
                }
            });
        }
        // ...and one session whose probes hard-fail mid-traversal. Whatever
        // it reports about itself, it must clean up after itself.
        {
            let exchange = Arc::clone(&exchange);
            let barrier = &barrier;
            s.spawn(move || {
                let mut dbg =
                    NonAnswerDebugger::from_shared(system.shared_parts(), dying).unwrap();
                dbg.set_wave_exchange(Some(exchange));
                barrier.wait();
                for q in QUERIES {
                    let _ = dbg.debug(q);
                }
            });
        }
    });
    assert_eq!(exchange.active_sessions(), 0, "dying session leaked its subscription");
    assert_eq!(exchange.pending_cells(), 0, "dying session leaked unresolved cells");
}

/// End-to-end over TCP: a batching server's wire reports match an offline
/// unbatched reference for every concurrent tenant, the batch gauges cross
/// the wire, abrupt disconnects (no Bye) leak nothing, and merging really
/// happened.
#[test]
fn server_batched_reports_match_unbatched_reference() {
    let config = session_config(StrategyKind::ScoreBasedHeuristic, 1, false);
    let system = NonAnswerDebugger::new(store_db(), config).unwrap();
    let truth: Vec<Vec<u8>> = QUERIES
        .iter()
        .map(|q| {
            let s = NonAnswerDebugger::from_shared(system.shared_parts(), config).unwrap();
            canonical(s.debug(q).expect("reference runs"))
        })
        .collect();
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        ServeConfig {
            workers: 4,
            poll_interval: Duration::from_millis(10),
            debug: config,
            batching: Some(batch_config()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let barrier = Barrier::new(4);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let barrier = &barrier;
            let truth = &truth;
            s.spawn(move || {
                let mut client =
                    DebugClient::connect(addr, &format!("tenant-{t}")).expect("connect");
                for pass in 0..2 {
                    for (qi, q) in QUERIES.iter().enumerate() {
                        // Align all four tenants per query so their waves
                        // genuinely overlap in the exchange.
                        barrier.wait();
                        let wire = client.debug(q).expect("batched server answers");
                        assert_eq!(
                            canonical(wire.report),
                            truth[qi],
                            "tenant {t} pass {pass} diverged on {q:?} over the wire"
                        );
                    }
                }
                // Abrupt disconnect: no Bye, just drop the socket mid-session.
                drop(client);
            });
        }
    });

    let exchange = server.wave_exchange().expect("batching is configured").clone();
    assert!(exchange.merged_waves() > 0, "concurrent tenants never merged a wave");
    assert!(exchange.coalesced_probes() > 0, "identical workloads never coalesced a probe");
    // Registrations live for the server session, which outlasts the client
    // socket by up to a poll interval — wait for teardown before the leak
    // check.
    let deadline = Instant::now() + Duration::from_secs(5);
    while exchange.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(exchange.active_sessions(), 0, "abrupt disconnects leaked subscriptions");
    assert_eq!(exchange.pending_cells(), 0, "abrupt disconnects leaked cells");

    // The gauges cross the wire, sorted and non-zero.
    let mut probe = DebugClient::connect(addr, "gauge-reader").unwrap();
    let json = probe.metrics_json().expect("metrics over the wire");
    assert!(!json.contains("\"batch_merged_waves\":0,"), "merged-wave gauge must be live: {json}");
    assert!(json.contains("\"batch_coalesce_ratio\":"), "ratio gauge must be present: {json}");
    probe.bye().unwrap();
    server.shutdown();
}

/// The single-session fast path: with batching configured but only one
/// session live, the exchange is never entered — zero submitted probes, zero
/// merged waves, and an uncontended request path identical to batching-off.
#[test]
fn a_solo_session_never_touches_the_exchange() {
    let config = session_config(StrategyKind::ScoreBasedHeuristic, 1, false);
    let system = NonAnswerDebugger::new(store_db(), config).unwrap();
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        ServeConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            debug: config,
            batching: Some(batch_config()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = DebugClient::connect(server.addr(), "solo").unwrap();
    for q in QUERIES {
        let wire = client.debug(q).expect("solo queries run");
        assert!(!wire.canonical.is_empty());
    }
    let json = client.metrics_json().unwrap();
    assert!(json.contains("\"batch_merged_waves\":0"), "solo traffic merged a wave: {json}");
    assert!(json.contains("\"batch_coalesce_ratio\":0"), "solo traffic coalesced: {json}");
    client.bye().unwrap();
    let exchange = server.wave_exchange().unwrap().clone();
    assert_eq!(exchange.submitted_probes(), 0, "solo session parked probes in the exchange");
    assert_eq!(exchange.merged_waves(), 0);
    server.shutdown();
}
