//! Overload and fault-injection integration tests: the serving layer's
//! robustness contract under hostile networks and pressure.
//!
//! Deterministic pieces first — shed latency, slowloris and idle deadlines,
//! per-tenant request shedding — then the seeded **chaos soak**: several
//! seeds × worker counts, every accepted stream wrapped in a
//! [`ChaosConfig`] schedule (partial writes, read stalls, mid-frame resets,
//! bit flips, injected query panics), resilient clients hammering two
//! tenants. The invariants asserted after each round:
//!
//! * no panic escapes a connection (worker threads and client threads all
//!   join; a server-side escape would break the accounting equation),
//! * permits and gate slots balance to zero (no leaks on any exit path),
//! * every client outcome is a typed response or typed error,
//! * the books balance: `connections_accepted == sessions_shed +
//!   sessions_admitted + sessions_rejected + conns_failed` and
//!   `sessions_admitted == sessions_closed`,
//! * with chaos quiet, payloads remain byte-identical to direct library
//!   calls (the loopback guarantee survives the chaos plumbing).

use std::time::{Duration, Instant};

use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwserve::protocol::{self, read_frame, write_frame, ErrorCode, Request, Response};
use kwserve::{
    ChaosConfig, ClientError, DebugClient, ReconnectPolicy, ResilientClient, ServeConfig,
    Server, TenantPolicy, TenantRegistry,
};
use relengine::{DataType, Database, DatabaseBuilder, Value};

/// The saffron-candle store of the paper's Figure 2 (same fixture as the
/// loopback tests).
fn store_db() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
    b.foreign_key("item", "color_id", "color", "id").unwrap();
    let mut db = b.finish().unwrap();
    db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
    db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
    db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
    db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(1), Value::text("scented pillar"), Value::Int(1), Value::Int(2)],
    )
    .unwrap();
    db.insert_values(
        "item",
        vec![Value::Int(2), Value::text("scented burner"), Value::Int(2), Value::Int(1)],
    )
    .unwrap();
    db
}

fn base_config() -> DebugConfig {
    DebugConfig { max_joins: 2, eval_cache: true, ..DebugConfig::default() }
}

const QUERIES: &[&str] = &["saffron candle", "red candle", "scented oil", "saffron candle"];

/// Above the high-water mark the `Overloaded` answer must arrive right away
/// (shed at accept), not after a queue drains — even with a glacial poll
/// interval and one busy worker.
#[test]
fn overload_shed_is_immediate_and_hinted() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let config = ServeConfig {
        workers: 1,
        max_inflight: 2,
        poll_interval: Duration::from_secs(2),
        retry_after: Duration::from_millis(75),
        debug: base_config(),
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .unwrap();
    let addr = server.addr();

    // Two raw connections fill the gate (one being served, one queued);
    // neither speaks, so the single worker stays pinned.
    let _held_a = std::net::TcpStream::connect(addr).unwrap();
    let _held_b = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the acceptor queue them

    let start = Instant::now();
    match DebugClient::connect(addr, "acme") {
        Err(ClientError::Server { code, retry_after_ms, .. }) => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert_eq!(retry_after_ms, 75, "server's configured hint crosses the wire");
        }
        other => panic!("expected Overloaded shed, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "shed answer took {:?}, must not wait for a worker or poll tick",
        start.elapsed()
    );

    let metrics = server.shutdown();
    assert_eq!(metrics.sessions_shed.into_inner(), 1);
    assert_eq!(metrics.connections_accepted.into_inner(), 3);
}

/// A peer that starts a frame and dribbles is disconnected with
/// `Error(Timeout)` once the frame deadline passes — the slowloris defense.
#[test]
fn slowloris_frames_hit_the_deadline() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let config = ServeConfig {
        workers: 1,
        poll_interval: Duration::from_millis(10),
        frame_deadline: Duration::from_millis(80),
        debug: base_config(),
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    // Claim a 100-byte frame, deliver 10 bytes, stall.
    std::io::Write::write_all(&mut stream, &100u32.to_le_bytes()).unwrap();
    std::io::Write::write_all(&mut stream, &[0u8; 10]).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("server answers before closing");
    match protocol::decode_response(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(read_frame(&mut stream).unwrap().is_none(), "connection closed after timeout");

    let metrics = server.shutdown();
    assert_eq!(metrics.deadlines_hit.into_inner(), 1);
}

/// With `idle_timeout` set, a session with no traffic is reaped with
/// `Error(Timeout)`; traffic resets the clock.
#[test]
fn idle_sessions_are_reaped() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let config = ServeConfig {
        workers: 1,
        poll_interval: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_millis(100)),
        debug: base_config(),
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let hello = protocol::encode_request(&Request::Hello { tenant: "acme".into(), pin_epoch: None });
    write_frame(&mut stream, &hello).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("welcome");
    assert!(matches!(
        protocol::decode_response(&payload).unwrap(),
        Response::Welcome { .. }
    ));
    // Now go silent: the server reaps us.
    let payload = read_frame(&mut stream).unwrap().expect("reap notice");
    match protocol::decode_response(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(read_frame(&mut stream).unwrap().is_none(), "connection closed");

    let metrics = server.shutdown();
    assert_eq!(metrics.deadlines_hit.into_inner(), 1);
    assert_eq!(metrics.sessions_admitted.into_inner(), 1);
    assert_eq!(metrics.sessions_closed.into_inner(), 1, "reaped session still accounted");
}

/// A tenant at its in-flight request cap gets `Overloaded` on the excess
/// request while the session itself survives and keeps serving.
#[test]
fn tenant_request_cap_sheds_requests_not_sessions() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let registry = TenantRegistry::new(TenantPolicy::default())
        .with_tenant("capped", TenantPolicy::default().with_max_inflight(0));
    let config = ServeConfig {
        workers: 2,
        poll_interval: Duration::from_millis(10),
        retry_after: Duration::from_millis(40),
        debug: base_config(),
        ..ServeConfig::default()
    };
    let server = Server::start(system.shared_parts(), registry, config).unwrap();

    let mut client = DebugClient::connect(server.addr(), "capped").unwrap();
    match client.debug("saffron candle") {
        Err(ClientError::Server { code, retry_after_ms, .. }) => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert_eq!(retry_after_ms, 40);
        }
        other => panic!("expected request shed, got {other:?}"),
    }
    // The session survived the shed: metrics still answer on it.
    let json = client.metrics_json().expect("session alive after shed");
    assert!(json.contains("\"requests_shed\":1"), "{json}");
    client.bye().unwrap();

    let metrics = server.shutdown();
    assert_eq!(metrics.requests_shed.into_inner(), 1);
    assert_eq!(metrics.sessions_closed.into_inner(), 1);
}

/// One soak round: chaos-wrapped server, two tenants × three resilient
/// clients × eight queries each. Returns (queries answered, typed errors,
/// final metrics as (panics_caught, chaos_faults, queries_ok)).
fn soak_round(seed: u64, workers: usize) -> (u64, u64, (u64, u64, u64)) {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let chaos = ChaosConfig {
        seed,
        read_stall_per_mille: 30,
        stall: Duration::from_millis(1),
        bitflip_per_mille: 10,
        partial_write_per_mille: 150,
        reset_per_mille: 25,
        panic_per_mille: 40,
    };
    let registry = TenantRegistry::new(TenantPolicy::default())
        .with_tenant("bursty", TenantPolicy::default().with_max_inflight(2));
    let config = ServeConfig {
        workers,
        poll_interval: Duration::from_millis(5),
        max_inflight: 4,
        frame_deadline: Duration::from_millis(300),
        write_deadline: Duration::from_secs(1),
        retry_after: Duration::from_millis(5),
        chaos: Some(chaos),
        debug: base_config(),
        ..ServeConfig::default()
    };
    let server = Server::start(system.shared_parts(), registry, config).unwrap();
    let addr = server.addr();

    let policy = ReconnectPolicy {
        max_retries: 25,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        io_timeout: Some(Duration::from_millis(400)),
    };
    let mut answered = 0u64;
    let mut typed_errors = 0u64;
    // Client threads: a panic in any of them fails the scope join, so
    // "every outcome is typed" is enforced by construction — ClientError is
    // the only failure channel.
    std::thread::scope(|s| {
        let handles: Vec<_> = ["acme", "bursty"]
            .iter()
            .flat_map(|tenant| (0..3).map(move |c| (tenant, c)))
            .map(|(tenant, c)| {
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut err = 0u64;
                    match ResilientClient::connect(addr, tenant, policy) {
                        Ok(mut client) => {
                            for i in 0..8usize {
                                match client.debug(QUERIES[(i + c) % QUERIES.len()]) {
                                    Ok(wire) => {
                                        // Well-formed by construction: the
                                        // payload decoded into a report.
                                        assert!(!wire.canonical.is_empty());
                                        ok += 1;
                                    }
                                    Err(_) => err += 1,
                                }
                            }
                            let _ = client.close();
                        }
                        Err(_) => err += 1,
                    }
                    (ok, err)
                })
            })
            .collect();
        for handle in handles {
            let (ok, err) = handle.join().expect("no panic escapes a client");
            answered += ok;
            typed_errors += err;
        }
    });

    // Leak checks: every gate slot and every permit must come back. Workers
    // may still be reading EOF off abandoned connections; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.inflight() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.inflight(), 0, "gate slots leaked (seed {seed}, workers {workers})");
    for tenant in ["acme", "bursty"] {
        assert_eq!(server.registry().active_sessions(tenant), 0, "leaked session permit");
        assert_eq!(server.registry().active_requests(tenant), 0, "leaked request permit");
    }

    let m = server.shutdown();
    let accepted = m.connections_accepted.into_inner();
    let shed = m.sessions_shed.into_inner();
    let admitted = m.sessions_admitted.into_inner();
    let rejected = m.sessions_rejected.into_inner();
    let failed = m.conns_failed.into_inner();
    let closed = m.sessions_closed.into_inner();
    assert_eq!(
        accepted,
        shed + admitted + rejected + failed,
        "accounting must balance (seed {seed}, workers {workers}): accepted {accepted} = \
         shed {shed} + admitted {admitted} + rejected {rejected} + failed {failed}"
    );
    assert_eq!(admitted, closed, "every admitted session must be closed");
    (
        answered,
        typed_errors,
        (
            m.panics_caught.into_inner(),
            m.chaos_faults_injected.load(std::sync::atomic::Ordering::Relaxed),
            m.queries_ok.into_inner(),
        ),
    )
}

/// The seeded chaos soak: ≥3 seeds, 2 tenants, workers 1 and 4.
#[test]
fn chaos_soak_across_seeds_and_worker_counts() {
    let mut total_answered = 0u64;
    let mut total_panics = 0u64;
    let mut total_faults = 0u64;
    for workers in [1usize, 4] {
        for seed in [1u64, 2, 3] {
            let (answered, _typed_errors, (panics, faults, queries_ok)) =
                soak_round(seed, workers);
            assert!(
                queries_ok >= 1,
                "server must make progress under chaos (seed {seed}, workers {workers})"
            );
            total_answered += answered;
            total_panics += panics;
            total_faults += faults;
        }
    }
    assert!(total_answered > 0, "some client exchanges must complete");
    assert!(total_faults > 0, "the chaos schedule must actually inject faults");
    // ~300+ panic draws at 40‰ across the rounds: P(zero) < 1e-5.
    assert!(total_panics > 0, "injected panics must be caught, not absent");
}

/// With the chaos plumbing compiled in but quiet, the loopback guarantee is
/// untouched: wire payloads are byte-identical to direct library calls and
/// zero faults are counted.
#[test]
fn quiet_chaos_is_byte_identical_to_direct_calls() {
    let system = NonAnswerDebugger::new(store_db(), base_config()).unwrap();
    let parts = system.shared_parts();
    let config = ServeConfig {
        workers: 2,
        poll_interval: Duration::from_millis(10),
        chaos: Some(ChaosConfig::quiet(99)),
        debug: base_config(),
        ..ServeConfig::default()
    };
    let server = Server::start(
        parts.clone(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .unwrap();

    let mut client = DebugClient::connect(server.addr(), "acme").unwrap();
    let direct = NonAnswerDebugger::from_shared(parts, base_config()).unwrap();
    for query in QUERIES {
        let wire = client.debug(query).expect("served");
        let expect = direct.debug(query).expect("library call");
        assert_eq!(
            wire.canonical,
            protocol::encode_report(&expect),
            "quiet chaos must be byte-transparent for {query:?}"
        );
    }
    client.bye().unwrap();

    let metrics = server.shutdown();
    assert_eq!(
        metrics.chaos_faults_injected.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "quiet schedule injects nothing"
    );
}
