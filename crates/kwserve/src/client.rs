//! Blocking clients for the debug service: the plain one-session
//! [`DebugClient`] and the reconnecting [`ResilientClient`].
//!
//! One [`DebugClient`] is one session: `connect` performs the
//! `Hello`/`Welcome` handshake, after which [`DebugClient::debug`] maps a
//! keyword query to a decoded [`DebugReport`] plus the wire-level facts a
//! library call cannot give you — the degraded flag, the server-side
//! wall-clock, and the raw canonical payload (which the loopback test
//! compares byte-for-byte against a direct [`kwdebug`] call).
//!
//! [`ResilientClient`] wraps that session for hostile networks and loaded
//! servers: capped-exponential-backoff reconnect with a fresh `Hello`
//! re-handshake, honoring the server's `retry_after_ms` hint on
//! `Overloaded`, and **at-most-once** semantics for `Debug` — a request is
//! retried only when the transport failed *before any response byte
//! arrived*, so the server cannot have answered (and on reconnect the old
//! session dies with its connection, taking any stale in-flight answer with
//! it). Read-only calls (`Metrics`) are idempotent and retry freely. The
//! load generator (`exp_serve`) and the REPL client mode are built on these.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;

use crate::protocol::{
    decode_report, decode_response, encode_request, write_frame, ErrorCode, FrameReader,
    Request, Response, WireError,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(io::Error),
    /// The server sent bytes this client cannot decode.
    Wire(WireError),
    /// The server refused the request (admission, overload, bad query,
    /// shutdown...).
    Server {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Server's suggested retry delay in milliseconds (0 = no hint;
        /// meaningful with [`ErrorCode::Overloaded`]).
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with an unexpected message type.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, retry_after_ms: 0, message } => {
                write!(f, "server refused: {code} ({message})")
            }
            ClientError::Server { code, retry_after_ms, message } => {
                write!(f, "server refused: {code} ({message}; retry after {retry_after_ms} ms)")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A report as received over the wire.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// The decoded report (wall-clock fields zero; see the canonical codec).
    pub report: DebugReport,
    /// Whether a tenant budget degraded this report to sound partial bounds.
    pub degraded: bool,
    /// Server-side wall-clock of the debug call, in nanoseconds.
    pub server_ns: u64,
    /// The canonical payload exactly as it crossed the wire — byte-equal to
    /// [`crate::protocol::encode_report`] of the equivalent library call.
    pub canonical: Vec<u8>,
}

/// One session against a running debug service.
#[derive(Debug)]
pub struct DebugClient {
    stream: TcpStream,
    session_id: u64,
    /// Database write epoch of the server's snapshot, from `Welcome`.
    epoch: u64,
    /// Response bytes received during the most recent exchange — the
    /// at-most-once evidence: 0 means the server cannot have answered.
    last_rx: u64,
}

impl DebugClient {
    /// Connects and performs the `Hello { tenant }` handshake. A quota
    /// refusal surfaces as [`ClientError::Server`] with
    /// [`ErrorCode::QuotaExhausted`]; a shed connection as
    /// [`ErrorCode::Overloaded`].
    pub fn connect(addr: SocketAddr, tenant: &str) -> Result<DebugClient, ClientError> {
        DebugClient::connect_with_timeout(addr, tenant, None)
    }

    /// Like [`DebugClient::connect`], with an IO timeout on every read and
    /// write: an exchange in which the server goes silent for longer fails
    /// with [`ClientError::Io`] instead of blocking forever.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        tenant: &str,
        io_timeout: Option<Duration>,
    ) -> Result<DebugClient, ClientError> {
        DebugClient::connect_pinned(addr, tenant, None, io_timeout)
    }

    /// Like [`DebugClient::connect_with_timeout`], additionally pinning the
    /// database epoch: the handshake fails with
    /// [`ErrorCode::StaleEpoch`] if the server's snapshot is at any other
    /// write epoch. Use it to prove, on reconnect, that reports remain
    /// comparable with those of a previous session.
    pub fn connect_pinned(
        addr: SocketAddr,
        tenant: &str,
        pin_epoch: Option<u64>,
        io_timeout: Option<Duration>,
    ) -> Result<DebugClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let mut client = DebugClient { stream, session_id: 0, epoch: 0, last_rx: 0 };
        match client.call(&Request::Hello { tenant: tenant.to_owned(), pin_epoch })? {
            Response::Welcome { session_id, epoch } => {
                client.session_id = session_id;
                client.epoch = epoch;
                Ok(client)
            }
            Response::Error { code, retry_after_ms, message } => {
                Err(ClientError::Server { code, retry_after_ms, message })
            }
            other => Err(ClientError::Protocol(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Database write epoch of the server's snapshot (from `Welcome`): every
    /// report this session receives reflects exactly this epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Response bytes received during the most recent exchange (0 after a
    /// failure means the request is safe to retry: the server never spoke).
    pub fn last_rx_bytes(&self) -> u64 {
        self.last_rx
    }

    /// Debugs one keyword query with the session's default strategy.
    pub fn debug(&mut self, query: &str) -> Result<WireReport, ClientError> {
        self.debug_with_strategy(query, None)
    }

    /// Debugs one keyword query, optionally overriding the traversal
    /// strategy for this request only.
    pub fn debug_with_strategy(
        &mut self,
        query: &str,
        strategy: Option<StrategyKind>,
    ) -> Result<WireReport, ClientError> {
        let request = Request::Debug { strategy, query: query.to_owned() };
        match self.call(&request)? {
            Response::Report { degraded, server_ns, payload } => {
                let report = decode_report(&payload)?;
                Ok(WireReport { report, degraded, server_ns, canonical: payload })
            }
            Response::Error { code, retry_after_ms, message } => {
                Err(ClientError::Server { code, retry_after_ms, message })
            }
            other => Err(ClientError::Protocol(format!("expected Report, got {other:?}"))),
        }
    }

    /// Fetches the cumulative metrics (server-wide counters plus this
    /// session's snapshot) as one stable-JSON record.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsJson { json } => Ok(json),
            Response::Error { code, retry_after_ms, message } => {
                Err(ClientError::Server { code, retry_after_ms, message })
            }
            other => Err(ClientError::Protocol(format!("expected MetricsJson, got {other:?}"))),
        }
    }

    /// Ends the session cleanly (waits for the server's `ByeAck`).
    pub fn bye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Bye)? {
            Response::ByeAck => Ok(()),
            Response::Error { code, retry_after_ms, message } => {
                Err(ClientError::Server { code, retry_after_ms, message })
            }
            other => Err(ClientError::Protocol(format!("expected ByeAck, got {other:?}"))),
        }
    }

    /// One request/response exchange, tracking received bytes for the
    /// at-most-once decision.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.last_rx = 0;
        write_frame(&mut self.stream, &encode_request(request))?;
        let mut reader = FrameReader::new();
        let polled = reader.poll(&mut self.stream);
        self.last_rx = reader.bytes_read();
        match polled {
            Ok(Some(payload)) => Ok(decode_response(&payload)?),
            Ok(None) => Err(ClientError::Protocol("server closed mid-exchange".into())),
            Err(e) => Err(e.into()),
        }
    }
}

/// Reconnect-and-retry policy for a [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Retries per operation beyond the first attempt.
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt up to
    /// [`ReconnectPolicy::max_backoff`].
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Per-read/write socket timeout (see
    /// [`DebugClient::connect_with_timeout`]). `None` waits forever.
    pub io_timeout: Option<Duration>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            io_timeout: None,
        }
    }
}

impl ReconnectPolicy {
    /// The capped-exponential delay before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.base_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

/// A self-healing session: reconnects (with a fresh `Hello` handshake)
/// across connection loss, shutdown notices, connection-deadline drops, and
/// `Overloaded` sheds — honoring the server's retry hint — while keeping
/// `Debug` at-most-once (see the module docs for the exact rule).
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    tenant: String,
    policy: ReconnectPolicy,
    inner: Option<DebugClient>,
    connects: u64,
}

impl ResilientClient {
    /// Creates the client and establishes the first session (retrying under
    /// `policy` if the server is briefly unavailable or shedding).
    pub fn connect(
        addr: SocketAddr,
        tenant: &str,
        policy: ReconnectPolicy,
    ) -> Result<ResilientClient, ClientError> {
        let mut client = ResilientClient {
            addr,
            tenant: tenant.to_owned(),
            policy,
            inner: None,
            connects: 0,
        };
        client.with_retry(true, |_| Ok(()))?;
        Ok(client)
    }

    /// Times this client re-established a session after the first connect.
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }

    /// The current session id, if a session is live.
    pub fn session_id(&self) -> Option<u64> {
        self.inner.as_ref().map(DebugClient::session_id)
    }

    /// The database epoch of the current session's snapshot, if live.
    /// Reconnects do not pin, so a value that changed across a reconnect
    /// means the service was restarted over a mutated database — reports
    /// before and after are not comparable.
    pub fn epoch(&self) -> Option<u64> {
        self.inner.as_ref().map(DebugClient::epoch)
    }

    /// Debugs one query with the session's default strategy (at-most-once).
    pub fn debug(&mut self, query: &str) -> Result<WireReport, ClientError> {
        self.debug_with_strategy(query, None)
    }

    /// Debugs one query, optionally overriding the strategy (at-most-once:
    /// never retried once any response byte has arrived).
    pub fn debug_with_strategy(
        &mut self,
        query: &str,
        strategy: Option<StrategyKind>,
    ) -> Result<WireReport, ClientError> {
        self.with_retry(false, |client| client.debug_with_strategy(query, strategy))
    }

    /// Fetches metrics JSON (idempotent: retried freely).
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        self.with_retry(true, DebugClient::metrics_json)
    }

    /// Ends the session cleanly, if one is live.
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.inner.take() {
            Some(client) => client.bye(),
            None => Ok(()),
        }
    }

    fn ensure_connected(&mut self) -> Result<&mut DebugClient, ClientError> {
        if self.inner.is_none() {
            let client = DebugClient::connect_with_timeout(
                self.addr,
                &self.tenant,
                self.policy.io_timeout,
            )?;
            self.connects += 1;
            self.inner = Some(client);
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }

    /// The retry loop. `idempotent` operations retry on any transport
    /// failure; non-idempotent ones (`Debug`) only when zero response bytes
    /// arrived, so the server cannot have executed and answered the request.
    fn with_retry<T>(
        &mut self,
        idempotent: bool,
        mut op: impl FnMut(&mut DebugClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = match self.ensure_connected() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            let error = match outcome {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            let received = self.inner.as_ref().map_or(0, DebugClient::last_rx_bytes);
            let delay = match &error {
                // No work was done server-side; honor the hint. A shed
                // request leaves the session alive, a shed connection never
                // had one — either way a retry is safe.
                ClientError::Server { code: ErrorCode::Overloaded, retry_after_ms, .. } => {
                    Some(
                        self.policy
                            .backoff(attempt)
                            .max(Duration::from_millis(u64::from(*retry_after_ms))),
                    )
                }
                // The server dropped (or is dropping) the connection between
                // requests; the request itself was never started.
                ClientError::Server {
                    code: ErrorCode::ShuttingDown | ErrorCode::Timeout, ..
                } => {
                    self.inner = None;
                    Some(self.policy.backoff(attempt))
                }
                // Typed refusals (bad query, quota, internal...) are answers,
                // not transport failures: surface them.
                ClientError::Server { .. } => None,
                // Transport broke. At-most-once: only safe when the server
                // never spoke.
                ClientError::Io(_) | ClientError::Wire(_) | ClientError::Protocol(_) => {
                    self.inner = None;
                    if idempotent || received == 0 {
                        Some(self.policy.backoff(attempt))
                    } else {
                        None
                    }
                }
            };
            match delay {
                Some(delay) if attempt < self.policy.max_retries => {
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                _ => return Err(error),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = ReconnectPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(70),
            ..ReconnectPolicy::default()
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(3), Duration::from_millis(70), "capped");
        assert_eq!(policy.backoff(30), Duration::from_millis(70), "shift clamped");
    }
}
