//! A blocking client for the debug service.
//!
//! One [`DebugClient`] is one session: `connect` performs the
//! `Hello`/`Welcome` handshake, after which [`DebugClient::debug`] maps a
//! keyword query to a decoded [`DebugReport`] plus the wire-level facts a
//! library call cannot give you — the degraded flag, the server-side
//! wall-clock, and the raw canonical payload (which the loopback test
//! compares byte-for-byte against a direct [`kwdebug`] call). The client is
//! the only protocol speaker the repo ships besides the server itself, and
//! the load generator (`exp_serve`) and REPL client mode are built on it.

use std::io;
use std::net::{SocketAddr, TcpStream};

use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;

use crate::protocol::{
    decode_report, decode_response, encode_request, read_frame, write_frame, ErrorCode,
    Request, Response, WireError,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(io::Error),
    /// The server sent bytes this client cannot decode.
    Wire(WireError),
    /// The server refused the request (admission, bad query, shutdown...).
    Server {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with an unexpected message type.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused: {code} ({message})")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A report as received over the wire.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// The decoded report (wall-clock fields zero; see the canonical codec).
    pub report: DebugReport,
    /// Whether a tenant budget degraded this report to sound partial bounds.
    pub degraded: bool,
    /// Server-side wall-clock of the debug call, in nanoseconds.
    pub server_ns: u64,
    /// The canonical payload exactly as it crossed the wire — byte-equal to
    /// [`crate::protocol::encode_report`] of the equivalent library call.
    pub canonical: Vec<u8>,
}

/// One session against a running debug service.
#[derive(Debug)]
pub struct DebugClient {
    stream: TcpStream,
    session_id: u64,
}

impl DebugClient {
    /// Connects and performs the `Hello { tenant }` handshake. A quota
    /// refusal surfaces as [`ClientError::Server`] with
    /// [`ErrorCode::QuotaExhausted`].
    pub fn connect(addr: SocketAddr, tenant: &str) -> Result<DebugClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = DebugClient { stream, session_id: 0 };
        match client.call(&Request::Hello { tenant: tenant.to_owned() })? {
            Response::Welcome { session_id } => {
                client.session_id = session_id;
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Debugs one keyword query with the session's default strategy.
    pub fn debug(&mut self, query: &str) -> Result<WireReport, ClientError> {
        self.debug_with_strategy(query, None)
    }

    /// Debugs one keyword query, optionally overriding the traversal
    /// strategy for this request only.
    pub fn debug_with_strategy(
        &mut self,
        query: &str,
        strategy: Option<StrategyKind>,
    ) -> Result<WireReport, ClientError> {
        let request = Request::Debug { strategy, query: query.to_owned() };
        match self.call(&request)? {
            Response::Report { degraded, server_ns, payload } => {
                let report = decode_report(&payload)?;
                Ok(WireReport { report, degraded, server_ns, canonical: payload })
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected Report, got {other:?}"))),
        }
    }

    /// Fetches the session's cumulative metrics as one stable-JSON record.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsJson { json } => Ok(json),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected MetricsJson, got {other:?}"))),
        }
    }

    /// Ends the session cleanly (waits for the server's `ByeAck`).
    pub fn bye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Bye)? {
            Response::ByeAck => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected ByeAck, got {other:?}"))),
        }
    }

    /// One request/response exchange.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::Protocol("server closed mid-exchange".into())),
        }
    }
}
