//! The wire protocol: length-prefixed frames, message codecs, and the
//! canonical (deterministic) [`DebugReport`] encoding.
//!
//! Everything here is hand-rolled over `std` — same discipline as
//! [`kwdebug::lattice_io`]: explicit little-endian layouts, sanity bounds on
//! every length read from the wire, and typed decode errors instead of
//! panics. The complete layout specification (normative) lives in
//! `SERVING.md`; this module is its implementation and the doc comments here
//! follow the same message names.
//!
//! ## Framing
//!
//! Every message travels in one frame: a 4-byte little-endian payload length
//! followed by that many payload bytes. The first payload byte is the opcode;
//! the rest is the opcode-specific body. Frames larger than [`MAX_FRAME`]
//! are rejected before allocation, so a corrupt or hostile length prefix can
//! never trigger a huge allocation (the `lattice_io` fuzz lesson).
//!
//! ## Canonical report encoding
//!
//! [`encode_report`] renders a [`DebugReport`] into bytes that are
//! **bit-identical for equal reports**: every deterministic field is encoded
//! in a fixed order and the non-deterministic ones (wall-clock durations,
//! `probe_time_ns`, the parallel scheduler's `steals`) are *excluded* —
//! zeroed on the wire and zero after [`decode_report`]. That is what lets
//! the loopback test assert `server payload == encode_report(direct call)`
//! byte for byte: the server provably computes the same answer as the
//! library. Latency is reported out-of-band (the `server_ns` field of
//! [`Response::Report`] and client-side clocks), never inside the canonical
//! payload.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use kwdebug::budget::Exhausted;
use kwdebug::metrics::{PhaseTiming, ProbeCounters};
use kwdebug::prune::PruneStats;
use kwdebug::report::{DebugReport, InterpretationOutcome, NonAnswerInfo, QueryInfo};
use kwdebug::traversal::StrategyKind;

/// Protocol magic, first field of every `Hello` (`b"KWSV"` little-endian).
pub const MAGIC: u32 = u32::from_le_bytes(*b"KWSV");

/// Protocol version carried in `Hello`; the server rejects mismatches with
/// [`ErrorCode::UnsupportedVersion`] rather than guessing. Version 2 added
/// the database epoch to `Welcome`, the optional `pin_epoch` to `Hello`,
/// and the four epoch/invalidation counters to the report probes block.
pub const VERSION: u16 = 2;

/// Upper bound on one frame's payload (32 MiB). Reports over DBLife at paper
/// scale are well under 1 MiB; anything larger than this is a corrupt or
/// hostile length prefix.
pub const MAX_FRAME: u32 = 32 << 20;

/// Version byte leading every canonical report payload.
const REPORT_CODEC_V1: u8 = 1;

/// Request opcodes (client → server).
mod req {
    pub const HELLO: u8 = 0x01;
    pub const DEBUG: u8 = 0x02;
    pub const METRICS: u8 = 0x03;
    pub const BYE: u8 = 0x04;
}

/// Response opcodes (server → client).
mod resp {
    pub const WELCOME: u8 = 0x81;
    pub const REPORT: u8 = 0x82;
    pub const METRICS_JSON: u8 = 0x83;
    pub const BYE_ACK: u8 = 0x84;
    pub const ERROR: u8 = 0xEE;
}

/// Why the server refused a request (the `code` of [`Response::Error`]).
///
/// Codes are stable wire values; add new ones at the end only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or message body could not be decoded. The server closes the
    /// connection after sending this — framing state is unrecoverable.
    Malformed = 1,
    /// `Hello` carried an unknown magic or protocol version.
    UnsupportedVersion = 2,
    /// Admission control refused the session: the tenant is at its
    /// concurrent-session quota. Retry later or against another tenant.
    QuotaExhausted = 3,
    /// The debug request itself was invalid (empty query, bad strategy);
    /// the session stays open.
    BadQuery = 4,
    /// A request arrived before `Hello` completed the handshake.
    NotReady = 5,
    /// The server is draining for shutdown; no further requests are served.
    ShuttingDown = 6,
    /// An internal error the client cannot fix; the session closes.
    Internal = 7,
    /// A connection deadline tripped: the peer dribbled a frame slower than
    /// the server's frame deadline (slowloris defense), sat idle past the
    /// idle timeout, or blocked the write path. The connection closes.
    Timeout = 8,
    /// Load shedding: the server's in-flight admission gate is at its
    /// high-water mark (connection refused, closed) or the tenant is at its
    /// concurrent-request cap (request refused, session survives). The
    /// response carries a `retry_after_ms` hint; back off at least that long
    /// before retrying — no work was done, so a retry is always safe.
    Overloaded = 9,
    /// `Hello` pinned a database epoch the server no longer serves (the
    /// database has been mutated past it). Reconnect without a pin — the
    /// `Welcome` of a fresh handshake carries the current epoch.
    StaleEpoch = 10,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnsupportedVersion),
            3 => Some(ErrorCode::QuotaExhausted),
            4 => Some(ErrorCode::BadQuery),
            5 => Some(ErrorCode::NotReady),
            6 => Some(ErrorCode::ShuttingDown),
            7 => Some(ErrorCode::Internal),
            8 => Some(ErrorCode::Timeout),
            9 => Some(ErrorCode::Overloaded),
            10 => Some(ErrorCode::StaleEpoch),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed message",
            ErrorCode::UnsupportedVersion => "unsupported protocol version",
            ErrorCode::QuotaExhausted => "tenant session quota exhausted",
            ErrorCode::BadQuery => "bad debug request",
            ErrorCode::NotReady => "handshake not completed",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::Internal => "internal server error",
            ErrorCode::Timeout => "connection deadline exceeded",
            ErrorCode::Overloaded => "server overloaded, retry later",
            ErrorCode::StaleEpoch => "pinned database epoch is stale",
        };
        f.write_str(s)
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens a session: protocol handshake plus tenant identification.
    /// Must be the first message on a connection.
    Hello {
        /// Tenant name for admission control and per-tenant budgets.
        tenant: String,
        /// Database epoch the client requires (`None` = serve whatever is
        /// current). When the server's database has moved past the pin it
        /// refuses the session with [`ErrorCode::StaleEpoch`] instead of
        /// silently answering from a different database state — the
        /// at-most-once analogue for reads: a reconnecting client can prove
        /// whether the world changed underneath it.
        pin_epoch: Option<u64>,
    },
    /// Runs one keyword query through the session's debugger.
    Debug {
        /// Per-request traversal strategy override (`None` = session
        /// default).
        strategy: Option<StrategyKind>,
        /// The raw keyword query text.
        query: String,
    },
    /// Requests the composite metrics record: server-wide counters
    /// (including the `shared_cache_*` gauges when the server runs a
    /// process-wide evaluation cache, see SERVING.md §7) alongside the
    /// session's cumulative stable-JSON
    /// [`kwdebug::metrics::MetricsSnapshot`].
    Metrics,
    /// Ends the session cleanly; the server answers [`Response::ByeAck`]
    /// and closes.
    Bye,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The session is admitted.
    Welcome {
        /// Server-assigned session id (unique per server lifetime).
        session_id: u64,
        /// Database write epoch the session's snapshot serves. Every report
        /// this session produces reflects exactly this epoch; clients
        /// comparing reports across sessions use it to tell recomputation
        /// differences from database changes.
        epoch: u64,
    },
    /// One debug report.
    Report {
        /// Whether the report is partial (a per-tenant budget cap tripped
        /// mid-traversal; the `unknown`/`possible_mpans` sections of the
        /// report carry the sound bounds — see SERVING.md §5).
        degraded: bool,
        /// Server-side wall-clock of the debug call in nanoseconds
        /// (out-of-band: not part of the canonical payload).
        server_ns: u64,
        /// Canonical report payload ([`encode_report`]).
        payload: Vec<u8>,
    },
    /// The composite metrics record.
    MetricsJson {
        /// One `{"server":…,"session":…}` line: sorted-key server counters
        /// (`ServerMetrics::to_json`, including `probes_executed` and the
        /// four `shared_cache_*` fields) plus the session's
        /// [`kwdebug::metrics::MetricsSnapshot::to_json`] record.
        json: String,
    },
    /// Clean goodbye; the server closes after sending this.
    ByeAck,
    /// A refusal; `code` says whether the session survives (see
    /// [`ErrorCode`]).
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Back-off hint in milliseconds, `0` = no hint. Only
        /// [`ErrorCode::Overloaded`] (and shutdown notices) set it; clients
        /// SHOULD wait at least this long before retrying.
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// An [`Response::Error`] without a back-off hint.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error { code, retry_after_ms: 0, message: message.into() }
    }

    /// A load-shedding [`ErrorCode::Overloaded`] refusal with its back-off
    /// hint.
    pub fn overloaded(retry_after: Duration, message: impl Into<String>) -> Response {
        Response::Error {
            code: ErrorCode::Overloaded,
            retry_after_ms: retry_after.as_millis().min(u128::from(u32::MAX)) as u32,
            message: message.into(),
        }
    }
}

/// A decode failure: the peer sent bytes this protocol version cannot read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- framing --

/// Writes one frame: `u32` little-endian payload length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload from a stream with **no read timeout set**.
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed).
/// A length prefix beyond [`MAX_FRAME`] is `InvalidData` — detected *before*
/// any allocation. Session loops that poll with a read timeout must use a
/// persistent [`FrameReader`] instead: this one-shot helper forgets partial
/// bytes on error, which is only sound when reads never time out.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    FrameReader::new().poll(r)
}

/// Incremental frame reader: accumulates one frame across any number of
/// short reads, so a read *timeout* mid-frame keeps the bytes already
/// received and the next [`FrameReader::poll`] resumes exactly where the
/// peer stalled — the property the server's poll loop needs to stay framed
/// while checking its shutdown flag. It also tracks when the current frame's
/// first byte arrived ([`FrameReader::frame_age`], the slowloris clock) and
/// counts lifetime bytes consumed ([`FrameReader::bytes_read`], the client's
/// at-most-once evidence).
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Bytes of the frame in progress (length prefix included).
    buf: Vec<u8>,
    /// Total frame size (4 + payload) once the length prefix is complete.
    need: Option<usize>,
    /// When the current frame's first byte arrived.
    started: Option<Instant>,
    /// Lifetime bytes consumed from the stream.
    total: u64,
}

impl FrameReader {
    /// A reader with no frame in progress.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether an incomplete frame is buffered (the peer started one and has
    /// not finished it).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// How long the current frame has been in flight (first byte to now);
    /// `None` when no frame is in progress.
    pub fn frame_age(&self) -> Option<Duration> {
        self.started.map(|s| s.elapsed())
    }

    /// Lifetime bytes consumed from the stream across all frames, complete
    /// or partial.
    pub fn bytes_read(&self) -> u64 {
        self.total
    }

    /// Tries to complete one frame. `Ok(Some(payload))` on a full frame
    /// (the reader resets for the next one); `Ok(None)` on clean EOF at a
    /// frame boundary. Timeouts (`WouldBlock`/`TimedOut`) and other IO
    /// errors propagate with the partial bytes retained, so the caller can
    /// poll again; EOF mid-frame is `UnexpectedEof`. A length prefix beyond
    /// [`MAX_FRAME`] is `InvalidData`, detected *before* any allocation.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Vec<u8>>> {
        loop {
            // Until the length prefix is in, we only ever ask for its
            // remainder; afterwards for the validated frame remainder — a
            // hostile prefix can never drive allocation past MAX_FRAME.
            let need = self.need.unwrap_or(4);
            while self.buf.len() < need {
                let mut chunk = [0u8; 16 * 1024];
                let want = (need - self.buf.len()).min(chunk.len());
                let n = r.read(&mut chunk[..want])?;
                if n == 0 {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer closed mid-frame",
                        ))
                    };
                }
                if self.started.is_none() {
                    self.started = Some(Instant::now());
                }
                self.total += n as u64;
                self.buf.extend_from_slice(&chunk[..n]);
            }
            if self.need.is_none() {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
                if len > MAX_FRAME {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
                    ));
                }
                self.need = Some(4 + len as usize);
                continue; // a zero-length payload is already complete
            }
            let payload = self.buf.split_off(4);
            self.buf.clear();
            self.need = None;
            self.started = None;
            return Ok(Some(payload));
        }
    }
}

// --------------------------------------------------------------- encoding --

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over one frame payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError(format!("truncated at byte {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length that must still fit in the remaining payload — a
    /// corrupt count can never over-allocate.
    fn len(&mut self, per_item: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(per_item.max(1)) > remaining {
            return Err(WireError(format!(
                "count {n} at byte {} exceeds remaining payload",
                self.pos
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError(format!("invalid UTF-8 at byte {}", self.pos)))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Wire code of a strategy (stable; `0xFF` = use the session default).
pub fn strategy_code(s: Option<StrategyKind>) -> u8 {
    match s {
        None => 0xFF,
        Some(StrategyKind::BottomUp) => 0,
        Some(StrategyKind::TopDown) => 1,
        Some(StrategyKind::BottomUpWithReuse) => 2,
        Some(StrategyKind::TopDownWithReuse) => 3,
        Some(StrategyKind::ScoreBasedHeuristic) => 4,
        Some(StrategyKind::BruteForce) => 5,
    }
}

/// Inverse of [`strategy_code`].
pub fn strategy_from_code(b: u8) -> Result<Option<StrategyKind>, WireError> {
    Ok(match b {
        0xFF => None,
        0 => Some(StrategyKind::BottomUp),
        1 => Some(StrategyKind::TopDown),
        2 => Some(StrategyKind::BottomUpWithReuse),
        3 => Some(StrategyKind::TopDownWithReuse),
        4 => Some(StrategyKind::ScoreBasedHeuristic),
        5 => Some(StrategyKind::BruteForce),
        other => return Err(WireError(format!("unknown strategy code {other}"))),
    })
}

/// Encodes a request into one frame payload.
pub fn encode_request(r: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match r {
        Request::Hello { tenant, pin_epoch } => {
            out.push(req::HELLO);
            put_u32(&mut out, MAGIC);
            put_u16(&mut out, VERSION);
            put_str(&mut out, tenant);
            match pin_epoch {
                None => out.push(0),
                Some(e) => {
                    out.push(1);
                    put_u64(&mut out, *e);
                }
            }
        }
        Request::Debug { strategy, query } => {
            out.push(req::DEBUG);
            out.push(strategy_code(*strategy));
            put_str(&mut out, query);
        }
        Request::Metrics => out.push(req::METRICS),
        Request::Bye => out.push(req::BYE),
    }
    out
}

/// Decodes a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut rd = Rd::new(payload);
    let op = rd.u8()?;
    let msg = match op {
        req::HELLO => {
            let magic = rd.u32()?;
            if magic != MAGIC {
                return Err(WireError(format!("bad magic {magic:#010x}")));
            }
            let version = rd.u16()?;
            if version != VERSION {
                return Err(WireError(format!("unsupported protocol version {version}")));
            }
            let tenant = rd.str()?;
            let pin_epoch = match rd.u8()? {
                0 => None,
                1 => Some(rd.u64()?),
                other => return Err(WireError(format!("bad pin-epoch flag {other}"))),
            };
            Request::Hello { tenant, pin_epoch }
        }
        req::DEBUG => {
            let strategy = strategy_from_code(rd.u8()?)?;
            Request::Debug { strategy, query: rd.str()? }
        }
        req::METRICS => Request::Metrics,
        req::BYE => Request::Bye,
        other => return Err(WireError(format!("unknown request opcode {other:#04x}"))),
    };
    rd.finish()?;
    Ok(msg)
}

/// Encodes a response into one frame payload.
pub fn encode_response(r: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match r {
        Response::Welcome { session_id, epoch } => {
            out.push(resp::WELCOME);
            put_u64(&mut out, *session_id);
            put_u64(&mut out, *epoch);
        }
        Response::Report { degraded, server_ns, payload } => {
            out.push(resp::REPORT);
            out.push(u8::from(*degraded));
            put_u64(&mut out, *server_ns);
            put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(payload);
        }
        Response::MetricsJson { json } => {
            out.push(resp::METRICS_JSON);
            put_str(&mut out, json);
        }
        Response::ByeAck => out.push(resp::BYE_ACK),
        Response::Error { code, retry_after_ms, message } => {
            out.push(resp::ERROR);
            out.push(*code as u8);
            put_u32(&mut out, *retry_after_ms);
            put_str(&mut out, message);
        }
    }
    out
}

/// Decodes a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut rd = Rd::new(payload);
    let op = rd.u8()?;
    let msg = match op {
        resp::WELCOME => Response::Welcome { session_id: rd.u64()?, epoch: rd.u64()? },
        resp::REPORT => {
            let degraded = match rd.u8()? {
                0 => false,
                1 => true,
                other => return Err(WireError(format!("bad degraded flag {other}"))),
            };
            let server_ns = rd.u64()?;
            let n = rd.len(1)?;
            let payload = rd.take(n)?.to_vec();
            Response::Report { degraded, server_ns, payload }
        }
        resp::METRICS_JSON => Response::MetricsJson { json: rd.str()? },
        resp::BYE_ACK => Response::ByeAck,
        resp::ERROR => {
            let code = ErrorCode::from_u8(rd.u8()?)
                .ok_or_else(|| WireError("unknown error code".into()))?;
            let retry_after_ms = rd.u32()?;
            Response::Error { code, retry_after_ms, message: rd.str()? }
        }
        other => return Err(WireError(format!("unknown response opcode {other:#04x}"))),
    };
    rd.finish()?;
    Ok(msg)
}

// ------------------------------------------------- canonical report codec --

fn exhausted_code(e: Option<Exhausted>) -> u8 {
    match e {
        None => 0,
        Some(Exhausted::Probes) => 1,
        Some(Exhausted::Deadline) => 2,
        Some(Exhausted::Tuples) => 3,
    }
}

fn exhausted_from_code(b: u8) -> Result<Option<Exhausted>, WireError> {
    Ok(match b {
        0 => None,
        1 => Some(Exhausted::Probes),
        2 => Some(Exhausted::Deadline),
        3 => Some(Exhausted::Tuples),
        other => return Err(WireError(format!("unknown exhausted code {other}"))),
    })
}

fn put_query_info(out: &mut Vec<u8>, q: &QueryInfo) {
    put_str(out, &q.sql);
    put_u32(out, q.level);
    put_u32(out, q.sample_tuples.len() as u32);
    for t in &q.sample_tuples {
        put_str(out, t);
    }
}

fn read_query_info(rd: &mut Rd<'_>) -> Result<QueryInfo, WireError> {
    let sql = rd.str()?;
    let level = rd.u32()?;
    let n = rd.len(4)?;
    let mut sample_tuples = Vec::with_capacity(n);
    for _ in 0..n {
        sample_tuples.push(rd.str()?);
    }
    Ok(QueryInfo { sql, level, sample_tuples })
}

/// The deterministic subset of [`ProbeCounters`] in fixed field order.
/// `probe_time_ns` (wall clock) and `steals` (scheduling-dependent) are
/// forced to zero so equal computations encode to equal bytes even across
/// parallel runs.
fn put_probes(out: &mut Vec<u8>, p: &ProbeCounters) {
    put_u64(out, p.probes_executed);
    put_u64(out, 0); // probe_time_ns: wall clock, excluded
    put_u64(out, p.tuples_scanned);
    put_u64(out, p.memo_hits);
    put_u64(out, p.r1_inferences);
    put_u64(out, p.r2_inferences);
    put_u64(out, p.reuse_hits);
    put_u64(out, p.retries);
    put_u64(out, p.faults_injected);
    put_u64(out, p.probes_abandoned);
    put_u64(out, p.budget_exhausted);
    put_u64(out, p.workers);
    put_u64(out, 0); // steals: scheduling noise, excluded
    put_u64(out, p.inference_suppressed_probes);
    put_u64(out, p.phase1_nodes_touched);
    put_u64(out, p.workspace_reuses);
    put_u64(out, p.selection_cache_hits);
    put_u64(out, p.subtree_cache_hits);
    put_u64(out, p.subtree_cache_dead_shortcuts);
    put_u64(out, p.verdict_cache_hits);
    put_u64(out, p.cache_bytes);
    put_u64(out, p.delta_postings_merged);
    put_u64(out, p.epoch);
    put_u64(out, p.entries_invalidated);
    put_u64(out, p.compactions);
}

fn read_probes(rd: &mut Rd<'_>) -> Result<ProbeCounters, WireError> {
    Ok(ProbeCounters {
        probes_executed: rd.u64()?,
        probe_time_ns: rd.u64()?,
        tuples_scanned: rd.u64()?,
        memo_hits: rd.u64()?,
        r1_inferences: rd.u64()?,
        r2_inferences: rd.u64()?,
        reuse_hits: rd.u64()?,
        retries: rd.u64()?,
        faults_injected: rd.u64()?,
        probes_abandoned: rd.u64()?,
        budget_exhausted: rd.u64()?,
        workers: rd.u64()?,
        steals: rd.u64()?,
        inference_suppressed_probes: rd.u64()?,
        phase1_nodes_touched: rd.u64()?,
        workspace_reuses: rd.u64()?,
        selection_cache_hits: rd.u64()?,
        subtree_cache_hits: rd.u64()?,
        subtree_cache_dead_shortcuts: rd.u64()?,
        verdict_cache_hits: rd.u64()?,
        cache_bytes: rd.u64()?,
        delta_postings_merged: rd.u64()?,
        // batched_waves / coalesced_probes depend on which sessions happened
        // to overlap in flight — cross-session scheduling noise, excluded
        // from the canonical payload like `steals`.
        batched_waves: 0,
        coalesced_probes: 0,
        epoch: rd.u64()?,
        entries_invalidated: rd.u64()?,
        compactions: rd.u64()?,
    })
}

/// Encodes a report into its canonical wire payload: equal reports produce
/// equal bytes, and wall-clock noise is excluded entirely (see the module
/// docs). The layout is versioned by a leading byte so future codecs can
/// coexist.
pub fn encode_report(r: &DebugReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.push(REPORT_CODEC_V1);
    put_u32(&mut out, r.keywords.len() as u32);
    for k in &r.keywords {
        put_str(&mut out, k);
    }
    put_u32(&mut out, r.unknown_keywords.len() as u32);
    for k in &r.unknown_keywords {
        put_str(&mut out, k);
    }
    put_u32(&mut out, r.interpretations.len() as u32);
    for i in &r.interpretations {
        put_u32(&mut out, i.keyword_tables.len() as u32);
        for (k, t) in &i.keyword_tables {
            put_str(&mut out, k);
            put_str(&mut out, t);
        }
        put_u32(&mut out, i.answers.len() as u32);
        for q in &i.answers {
            put_query_info(&mut out, q);
        }
        put_u32(&mut out, i.non_answers.len() as u32);
        for n in &i.non_answers {
            put_query_info(&mut out, &n.query);
            put_u32(&mut out, n.mpans.len() as u32);
            for q in &n.mpans {
                put_query_info(&mut out, q);
            }
            put_u32(&mut out, n.possible_mpans.len() as u32);
            for q in &n.possible_mpans {
                put_query_info(&mut out, q);
            }
        }
        put_u32(&mut out, i.unknown.len() as u32);
        for q in &i.unknown {
            put_query_info(&mut out, q);
        }
        out.push(exhausted_code(i.budget_exhausted));
        let s = &i.prune_stats;
        for v in [
            s.lattice_nodes,
            s.retained_phase1,
            s.total_nodes,
            s.mtn_count,
            s.pruned_nodes,
            s.mtn_descendants_total,
            s.mtn_descendants_unique,
        ] {
            put_u64(&mut out, v as u64);
        }
        put_u64(&mut out, i.sql_queries);
        put_probes(&mut out, &i.probes);
    }
    out
}

/// Decodes a canonical report payload. Wall-clock fields (durations,
/// `probe_time_ns`, `steals`) come back zero — they are not on the wire.
pub fn decode_report(payload: &[u8]) -> Result<DebugReport, WireError> {
    let mut rd = Rd::new(payload);
    let version = rd.u8()?;
    if version != REPORT_CODEC_V1 {
        return Err(WireError(format!("unknown report codec version {version}")));
    }
    let n = rd.len(4)?;
    let mut keywords = Vec::with_capacity(n);
    for _ in 0..n {
        keywords.push(rd.str()?);
    }
    let n = rd.len(4)?;
    let mut unknown_keywords = Vec::with_capacity(n);
    for _ in 0..n {
        unknown_keywords.push(rd.str()?);
    }
    let n = rd.len(4)?;
    let mut interpretations = Vec::with_capacity(n);
    for _ in 0..n {
        let n = rd.len(8)?;
        let mut keyword_tables = Vec::with_capacity(n);
        for _ in 0..n {
            let k = rd.str()?;
            let t = rd.str()?;
            keyword_tables.push((k, t));
        }
        let n = rd.len(8)?;
        let mut answers = Vec::with_capacity(n);
        for _ in 0..n {
            answers.push(read_query_info(&mut rd)?);
        }
        let n = rd.len(8)?;
        let mut non_answers = Vec::with_capacity(n);
        for _ in 0..n {
            let query = read_query_info(&mut rd)?;
            let n = rd.len(8)?;
            let mut mpans = Vec::with_capacity(n);
            for _ in 0..n {
                mpans.push(read_query_info(&mut rd)?);
            }
            let n = rd.len(8)?;
            let mut possible_mpans = Vec::with_capacity(n);
            for _ in 0..n {
                possible_mpans.push(read_query_info(&mut rd)?);
            }
            non_answers.push(NonAnswerInfo { query, mpans, possible_mpans });
        }
        let n = rd.len(8)?;
        let mut unknown = Vec::with_capacity(n);
        for _ in 0..n {
            unknown.push(read_query_info(&mut rd)?);
        }
        let budget_exhausted = exhausted_from_code(rd.u8()?)?;
        let mut stats = [0u64; 7];
        for v in &mut stats {
            *v = rd.u64()?;
        }
        let prune_stats = PruneStats {
            lattice_nodes: stats[0] as usize,
            retained_phase1: stats[1] as usize,
            total_nodes: stats[2] as usize,
            mtn_count: stats[3] as usize,
            pruned_nodes: stats[4] as usize,
            mtn_descendants_total: stats[5] as usize,
            mtn_descendants_unique: stats[6] as usize,
        };
        let sql_queries = rd.u64()?;
        let probes = read_probes(&mut rd)?;
        interpretations.push(InterpretationOutcome {
            keyword_tables,
            answers,
            non_answers,
            unknown,
            budget_exhausted,
            prune_stats,
            sql_queries,
            sql_time: std::time::Duration::ZERO,
            probes,
            timing: PhaseTiming::default(),
        });
    }
    rd.finish()?;
    Ok(DebugReport {
        keywords,
        unknown_keywords,
        interpretations,
        mapping_time: std::time::Duration::ZERO,
        total_time: std::time::Duration::ZERO,
        timing: PhaseTiming::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> DebugReport {
        DebugReport {
            keywords: vec!["saffron".into(), "candle".into()],
            unknown_keywords: vec![],
            interpretations: vec![InterpretationOutcome {
                keyword_tables: vec![("saffron".into(), "color".into())],
                answers: vec![QueryInfo {
                    sql: "SELECT 1".into(),
                    level: 2,
                    sample_tuples: vec!["item(1)".into()],
                }],
                non_answers: vec![NonAnswerInfo {
                    query: QueryInfo { sql: "SELECT 0".into(), level: 3, sample_tuples: vec![] },
                    mpans: vec![QueryInfo {
                        sql: "SUB".into(),
                        level: 1,
                        sample_tuples: vec![],
                    }],
                    possible_mpans: vec![],
                }],
                unknown: vec![],
                budget_exhausted: Some(Exhausted::Deadline),
                prune_stats: PruneStats {
                    lattice_nodes: 10,
                    retained_phase1: 4,
                    total_nodes: 3,
                    mtn_count: 1,
                    pruned_nodes: 4,
                    mtn_descendants_total: 3,
                    mtn_descendants_unique: 3,
                },
                sql_queries: 7,
                sql_time: std::time::Duration::from_millis(3),
                probes: ProbeCounters {
                    probes_executed: 7,
                    probe_time_ns: 12345,
                    steals: 2,
                    r2_inferences: 1,
                    delta_postings_merged: 3,
                    epoch: 5,
                    entries_invalidated: 11,
                    compactions: 1,
                    ..ProbeCounters::default()
                },
                timing: PhaseTiming::default(),
            }],
            mapping_time: std::time::Duration::from_millis(1),
            total_time: std::time::Duration::from_millis(5),
            timing: PhaseTiming::default(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello { tenant: "acme".into(), pin_epoch: None },
            Request::Hello { tenant: "acme".into(), pin_epoch: Some(17) },
            Request::Debug { strategy: None, query: "saffron candle".into() },
            Request::Debug {
                strategy: Some(StrategyKind::BottomUpWithReuse),
                query: "x".into(),
            },
            Request::Metrics,
            Request::Bye,
        ];
        for r in &reqs {
            assert_eq!(&decode_request(&encode_request(r)).unwrap(), r);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Welcome { session_id: 42, epoch: 7 },
            Response::Report { degraded: true, server_ns: 99, payload: vec![1, 2, 3] },
            Response::MetricsJson { json: "{}".into() },
            Response::ByeAck,
            Response::error(ErrorCode::QuotaExhausted, "full"),
            Response::overloaded(Duration::from_millis(250), "gate at high water"),
            Response::error(ErrorCode::Timeout, "frame too slow"),
            Response::error(ErrorCode::StaleEpoch, "database moved past pin 3"),
        ];
        for r in &resps {
            assert_eq!(&decode_response(&encode_response(r)).unwrap(), r);
        }
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let hello = Request::Hello { tenant: "t".into(), pin_epoch: None };
        let mut p = encode_request(&hello);
        p[1] ^= 0xFF;
        assert!(decode_request(&p).is_err(), "bad magic");
        let mut p = encode_request(&hello);
        p[5] = 0x7F;
        assert!(decode_request(&p).is_err(), "bad version");
        let mut p = encode_request(&hello);
        *p.last_mut().unwrap() = 7;
        assert!(decode_request(&p).is_err(), "bad pin-epoch flag");
    }

    #[test]
    fn report_round_trips_without_wall_clock() {
        let r = sample_report();
        let bytes = encode_report(&r);
        let back = decode_report(&bytes).unwrap();
        assert_eq!(back.keywords, r.keywords);
        assert_eq!(back.interpretations[0].answers, r.interpretations[0].answers);
        assert_eq!(back.interpretations[0].non_answers, r.interpretations[0].non_answers);
        assert_eq!(back.interpretations[0].budget_exhausted, Some(Exhausted::Deadline));
        assert_eq!(back.interpretations[0].prune_stats, r.interpretations[0].prune_stats);
        assert_eq!(back.interpretations[0].sql_queries, 7);
        // Wall clock and scheduling noise are excluded from the wire.
        assert_eq!(back.total_time, std::time::Duration::ZERO);
        assert_eq!(back.interpretations[0].probes.probe_time_ns, 0);
        assert_eq!(back.interpretations[0].probes.steals, 0);
        assert_eq!(back.interpretations[0].probes.probes_executed, 7);
        // The epoch/invalidation block added in protocol v2 is on the wire.
        assert_eq!(back.interpretations[0].probes.delta_postings_merged, 3);
        assert_eq!(back.interpretations[0].probes.epoch, 5);
        assert_eq!(back.interpretations[0].probes.entries_invalidated, 11);
        assert_eq!(back.interpretations[0].probes.compactions, 1);
        // Canonical: re-encoding the decoded report is byte-identical.
        assert_eq!(encode_report(&back), bytes);
    }

    #[test]
    fn canonical_encoding_ignores_timing_differences() {
        let a = sample_report();
        let mut b = sample_report();
        b.total_time = std::time::Duration::from_secs(9);
        b.interpretations[0].probes.probe_time_ns = 777;
        b.interpretations[0].probes.steals = 5;
        assert_eq!(encode_report(&a), encode_report(&b));
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = encode_report(&sample_report());
        assert!(decode_report(&bytes[..bytes.len() - 1]).is_err(), "truncation");
        let mut huge = bytes.clone();
        // Corrupt the keyword count to a huge value: must error, not allocate.
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_report(&huge).is_err());
    }

    #[test]
    fn frames_round_trip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut rd = &buf[..];
        assert_eq!(read_frame(&mut rd).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut rd).unwrap().is_none(), "clean EOF");

        let mut bad = Vec::new();
        bad.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut &bad[..]).is_err(), "oversized frame refused");
    }

    /// A reader that yields at most `chunk` bytes per call and a timeout
    /// after each chunk — the shape of a dribbling (slowloris) peer under a
    /// socket read timeout.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
            }
            self.ready = false;
            let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow but framed").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let total = wire.len();
        let mut dribble = Dribble { data: wire, pos: 0, chunk: 3, ready: false };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        // One byte every other call: every WouldBlock must leave framing
        // intact (the old one-shot read_frame lost partial bytes here).
        for _ in 0..10 * total {
            match reader.poll(&mut dribble) {
                Ok(Some(p)) => frames.push(p),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames, vec![b"slow but framed".to_vec(), b"second".to_vec()]);
        assert_eq!(reader.bytes_read(), total as u64);
        assert!(!reader.mid_frame());
        assert!(reader.frame_age().is_none());
    }

    #[test]
    fn frame_reader_tracks_mid_frame_state() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire.truncate(6); // length prefix + 2 payload bytes, then stall
        let mut dribble = Dribble { data: wire, pos: 0, chunk: 16, ready: true };
        let mut reader = FrameReader::new();
        // Two polls drain the 6 available bytes (prefix, then 2 payload
        // bytes), each ending in a timeout with the frame incomplete.
        for _ in 0..2 {
            let err = reader.poll(&mut dribble).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
        assert!(reader.mid_frame(), "partial frame is buffered");
        assert!(reader.frame_age().is_some(), "slowloris clock is running");
        assert_eq!(reader.bytes_read(), 6);
    }

    #[test]
    fn frame_reader_rejects_oversized_and_torn_frames() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut reader = FrameReader::new();
        let err = reader.poll(&mut &oversized[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut torn = Vec::new();
        write_frame(&mut torn, b"whole").unwrap();
        torn.truncate(torn.len() - 2);
        let mut reader = FrameReader::new();
        let err = reader.poll(&mut &torn[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "EOF mid-frame is torn");
    }

    #[test]
    fn error_retry_hint_round_trips() {
        let r = Response::overloaded(Duration::from_millis(123), "busy");
        match decode_response(&encode_response(&r)).unwrap() {
            Response::Error { code, retry_after_ms, .. } => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert_eq!(retry_after_ms, 123);
            }
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eq!(ErrorCode::from_u8(8), Some(ErrorCode::Timeout));
        assert_eq!(ErrorCode::from_u8(9), Some(ErrorCode::Overloaded));
        assert_eq!(ErrorCode::from_u8(10), Some(ErrorCode::StaleEpoch));
        assert_eq!(ErrorCode::from_u8(11), None, "codes append at the end only");
    }

    #[test]
    fn strategy_codes_cover_all() {
        for s in StrategyKind::ALL.into_iter().chain([StrategyKind::BruteForce]) {
            assert_eq!(strategy_from_code(strategy_code(Some(s))).unwrap(), Some(s));
        }
        assert_eq!(strategy_from_code(0xFF).unwrap(), None);
        assert!(strategy_from_code(42).is_err());
    }
}
