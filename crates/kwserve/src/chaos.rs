//! Deterministic network chaos: seeded fault injection on accepted streams.
//!
//! This is the serving-layer sibling of [`relengine::chaos`]: the same
//! SplitMix64 discipline (one decision draw per IO call, per-mille rates, a
//! seed that fully determines the schedule), applied one layer up — to the
//! *bytes on the wire* instead of the probe executor. A
//! [`ChaosStream`] wraps each accepted connection when
//! [`crate::ServeConfig::chaos`] is set and injects, per read/write call:
//!
//! * **read stalls** — sleep before the read, the slow-network shape the
//!   frame deadline must survive;
//! * **bit flips** — corrupt one bit of the data moved, so decoders face
//!   torn frames (inbound flips exercise the server's typed `Malformed`
//!   path, outbound flips the client's wire-error handling);
//! * **partial writes** — a `write` moves only a prefix, exercising every
//!   `write_all` loop and frame-boundary assumption;
//! * **mid-frame resets** — the TCP connection is shut down in the middle of
//!   whatever was in flight, and every later IO call on the stream fails
//!   with `ConnectionReset`.
//!
//! A separate draw stream (same seed, salted) drives **panic injection** in
//! the server's request loop ([`ChaosConfig::panic_per_mille`]), proving the
//! `catch_unwind` isolation under the soak test.
//!
//! Determinism contract: one connection's schedule is a pure function of
//! `ChaosConfig::seed` and the connection's admission index (each accepted
//! connection salts the seed with its index, exactly like the parallel
//! scheduler's per-worker chaos seeds). Faults are injected *around* the
//! real IO, never by fabricating data: bytes are flipped in a copy, reads
//! are delayed, connections are reset — a quiet config (`all rates 0`) is
//! byte-for-byte transparent, which is what lets the soak test assert
//! canonical-payload equality with chaos compiled in but quiet.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relengine::rng::SplitMix64;

/// Configuration of a deterministic stream-fault schedule. Rates are per
/// mille (0..=1000), like [`relengine::FaultConfig`]; the default injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the decision streams; same seed (and connection index), same
    /// schedule.
    pub seed: u64,
    /// Per-mille probability that a read is delayed by [`ChaosConfig::stall`]
    /// before executing.
    pub read_stall_per_mille: u32,
    /// The artificial delay injected when the stall draw fires.
    pub stall: Duration,
    /// Per-mille probability that an IO call flips one bit of the data it
    /// moves (reads corrupt inbound frames, writes corrupt outbound ones).
    pub bitflip_per_mille: u32,
    /// Per-mille probability that a write moves only a prefix of its buffer
    /// (a legal short write; `write_all` loops must cope).
    pub partial_write_per_mille: u32,
    /// Per-mille probability that an IO call resets the connection mid-frame
    /// (TCP shutdown; all later calls fail with `ConnectionReset`).
    pub reset_per_mille: u32,
    /// Per-mille probability that a `Debug` request panics inside the
    /// server's session loop (drawn from a salted stream, not per IO call) —
    /// the poisoned-query simulation behind the panic-isolation guarantee.
    pub panic_per_mille: u32,
}

impl ChaosConfig {
    /// A schedule that injects nothing (byte-for-byte transparent).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            read_stall_per_mille: 0,
            stall: Duration::ZERO,
            bitflip_per_mille: 0,
            partial_write_per_mille: 0,
            reset_per_mille: 0,
            panic_per_mille: 0,
        }
    }

    /// A moderate all-faults schedule for soak tests: stalls, flips, short
    /// writes, resets and panics all on, rates low enough that most
    /// exchanges still complete.
    pub fn soak(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            read_stall_per_mille: 40,
            stall: Duration::from_millis(2),
            bitflip_per_mille: 15,
            partial_write_per_mille: 120,
            reset_per_mille: 20,
            panic_per_mille: 15,
        }
    }

    /// Whether any fault can ever fire under this schedule.
    pub fn is_quiet(&self) -> bool {
        self.read_stall_per_mille == 0
            && self.bitflip_per_mille == 0
            && self.partial_write_per_mille == 0
            && self.reset_per_mille == 0
            && self.panic_per_mille == 0
    }

    /// The per-connection IO decision stream: the config seed salted with
    /// the connection's admission index.
    pub fn stream_rng(&self, conn_index: u64) -> SplitMix64 {
        SplitMix64::seed_from_u64(
            self.seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// The per-connection panic decision stream (salted differently from the
    /// IO stream so panics and IO faults are independent draws).
    pub fn panic_rng(&self, conn_index: u64) -> SplitMix64 {
        SplitMix64::seed_from_u64(
            self.seed
                ^ 0xA076_1D64_78BD_642F_u64
                ^ conn_index.wrapping_mul(0xE703_7ED1_A0B4_28DB),
        )
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::quiet(0)
    }
}

/// One per-mille draw from a decision stream.
pub(crate) fn roll(rng: &mut SplitMix64, per_mille: u32) -> bool {
    per_mille > 0 && rng.next_u64() % 1000 < u64::from(per_mille)
}

/// The subset of socket behavior [`ChaosStream`] needs beyond `Read + Write`
/// (a trait so tests can chaos-wrap in-memory streams).
pub trait Resettable {
    /// Hard-close both directions, so the peer sees a reset/EOF mid-frame.
    fn reset(&mut self);
}

impl Resettable for std::net::TcpStream {
    fn reset(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// A fault-injecting wrapper around one accepted stream. See the module docs
/// for the fault menu; every injected fault (stall, flip, short write,
/// reset) increments the shared `faults` counter, which the server surfaces
/// as `chaos_faults_injected`.
pub struct ChaosStream<S> {
    inner: S,
    config: ChaosConfig,
    rng: SplitMix64,
    faults: Arc<AtomicU64>,
    /// Sticky: once reset, every IO call fails.
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `config`, drawing this connection's schedule from
    /// `conn_index` (see [`ChaosConfig::stream_rng`]). `faults` receives one
    /// increment per injected fault.
    pub fn new(
        inner: S,
        config: ChaosConfig,
        conn_index: u64,
        faults: Arc<AtomicU64>,
    ) -> ChaosStream<S> {
        let rng = config.stream_rng(conn_index);
        ChaosStream { inner, config, rng, faults, dead: false }
    }

    fn fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    fn reset_err() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected reset")
    }
}

impl<S: Read + Write + Resettable> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::reset_err());
        }
        if roll(&mut self.rng, self.config.reset_per_mille) {
            self.dead = true;
            self.inner.reset();
            self.fault();
            return Err(Self::reset_err());
        }
        if roll(&mut self.rng, self.config.read_stall_per_mille) {
            self.fault();
            std::thread::sleep(self.config.stall);
        }
        let flip = roll(&mut self.rng, self.config.bitflip_per_mille);
        // The bit position is drawn before the read so the decision stream
        // consumes a fixed number of draws per call regardless of `n`.
        let bit = self.rng.next_u64();
        let n = self.inner.read(buf)?;
        if flip && n > 0 {
            self.fault();
            buf[(bit as usize >> 3) % n] ^= 1 << (bit & 7);
        }
        Ok(n)
    }
}

impl<S: Read + Write + Resettable> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::reset_err());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if roll(&mut self.rng, self.config.reset_per_mille) {
            self.dead = true;
            self.inner.reset();
            self.fault();
            return Err(Self::reset_err());
        }
        let short = roll(&mut self.rng, self.config.partial_write_per_mille);
        let cut = self.rng.next_u64();
        let flip = roll(&mut self.rng, self.config.bitflip_per_mille);
        let bit = self.rng.next_u64();
        let len = if short && buf.len() > 1 {
            self.fault();
            1 + (cut as usize % (buf.len() - 1))
        } else {
            buf.len()
        };
        if flip {
            self.fault();
            let mut copy = buf[..len].to_vec();
            let i = (bit as usize >> 3) % len;
            copy[i] ^= 1 << (bit & 7);
            self.inner.write(&copy)
        } else {
            self.inner.write(&buf[..len])
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::reset_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory full-duplex half: reads from `rx`, appends writes to `tx`.
    #[derive(Default)]
    struct Pipe {
        rx: Vec<u8>,
        pos: usize,
        tx: Vec<u8>,
        was_reset: bool,
    }

    impl Read for Pipe {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = out.len().min(self.rx.len() - self.pos);
            out[..n].copy_from_slice(&self.rx[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Resettable for Pipe {
        fn reset(&mut self) {
            self.was_reset = true;
        }
    }

    #[test]
    fn quiet_chaos_is_transparent() {
        let pipe = Pipe { rx: b"hello frames".to_vec(), ..Pipe::default() };
        let mut s = ChaosStream::new(pipe, ChaosConfig::quiet(7), 3, Arc::default());
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello frames");
        s.write_all(b"echo").unwrap();
        assert_eq!(s.inner.tx, b"echo");
        assert_eq!(s.faults.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = ChaosConfig::soak(42);
        let run = || {
            let pipe = Pipe { rx: vec![0xAB; 256], ..Pipe::default() };
            let mut s = ChaosStream::new(pipe, config, 5, Arc::default());
            let mut out = Vec::new();
            let mut short_writes = Vec::new();
            for _ in 0..64 {
                let mut buf = [0u8; 8];
                match s.read(&mut buf) {
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
                match s.write(&[0xCD; 16]) {
                    Ok(n) => short_writes.push(n),
                    Err(_) => break,
                }
            }
            (out, short_writes, s.inner.tx.clone(), s.faults.load(Ordering::Relaxed))
        };
        assert_eq!(run(), run(), "schedule is a pure function of (seed, conn)");
    }

    #[test]
    fn reset_is_sticky() {
        let config = ChaosConfig { reset_per_mille: 1000, ..ChaosConfig::quiet(1) };
        let pipe = Pipe { rx: vec![1, 2, 3], ..Pipe::default() };
        let mut s = ChaosStream::new(pipe, config, 0, Arc::default());
        assert_eq!(s.read(&mut [0u8; 4]).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert!(s.inner.was_reset, "underlying stream was shut down");
        assert_eq!(s.write(&[9]).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.flush().unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.faults.load(Ordering::Relaxed), 1, "one reset, counted once");
    }

    #[test]
    fn bitflips_corrupt_exactly_one_bit() {
        let config = ChaosConfig { bitflip_per_mille: 1000, ..ChaosConfig::quiet(9) };
        let payload = vec![0u8; 32];
        let pipe = Pipe { rx: payload.clone(), ..Pipe::default() };
        let mut s = ChaosStream::new(pipe, config, 1, Arc::default());
        let mut buf = [0u8; 32];
        let n = s.read(&mut buf).unwrap();
        let flipped: u32 = buf[..n].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs");

        s.write_all(&[0u8; 16]).unwrap();
        let flipped: u32 = s.inner.tx.iter().map(|b| b.count_ones()).sum();
        assert!(flipped >= 1, "outbound data corrupted too");
    }

    #[test]
    fn partial_writes_move_a_prefix() {
        let config = ChaosConfig { partial_write_per_mille: 1000, ..ChaosConfig::quiet(3) };
        let mut s = ChaosStream::new(Pipe::default(), config, 2, Arc::default());
        let n = s.write(&[7u8; 100]).unwrap();
        assert!((1..100).contains(&n), "short write: {n}");
        assert_eq!(s.inner.tx.len(), n);
        // write_all still lands everything.
        s.inner.tx.clear();
        s.write_all(&[7u8; 100]).unwrap();
        assert_eq!(s.inner.tx.len(), 100);
    }
}
