//! The TCP server: worker-pool accept loop, session lifecycle, graceful
//! shutdown, and server-level metrics.
//!
//! ## Threading model
//!
//! [`Server::start`] binds one [`TcpListener`] and spawns
//! [`ServeConfig::workers`] OS threads that all block in `accept()` on the
//! shared listener (the kernel wakes exactly one per connection). Each
//! worker owns at most one connection at a time and runs its whole session
//! loop inline — so the worker count *is* the concurrent-session capacity,
//! and connections beyond it queue in the OS accept backlog until a worker
//! frees up. That queueing is the server's global admission control;
//! per-tenant fairness is the [`TenantRegistry`]'s explicit rejection
//! (see `kwserve::tenant`).
//!
//! ## Per-session state
//!
//! Every admitted session builds its own [`NonAnswerDebugger`] via
//! [`NonAnswerDebugger::from_shared`]: a fresh workspace pool, a fresh
//! evaluation-cache generation and the tenant's budget, over the one shared
//! immutable database/index/lattice (DESIGN.md §11 explains why sessions
//! must never share an evalcache generation). Session construction is O(1),
//! so a connection costs no Phase-0 work.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips an atomic flag and pokes one dummy connection
//! per worker to wake blocked `accept()`s. Workers mid-session notice the
//! flag at their next read-timeout tick ([`ServeConfig::poll_interval`]),
//! answer the client with `ShuttingDown`, and exit; in-flight requests
//! finish normally — a debug call is never interrupted.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kwdebug::debugger::{DebugConfig, NonAnswerDebugger, SharedParts};
use kwdebug::metrics::{MetricsSnapshot, PhaseTiming, ProbeCounters};
use kwdebug::KwError;

use crate::protocol::{
    decode_request, encode_report, encode_response, read_frame, write_frame, ErrorCode,
    Request, Response,
};
use crate::tenant::{SessionPermit, TenantRegistry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: SocketAddr,
    /// Worker threads — the concurrent-session capacity.
    pub workers: usize,
    /// Session read timeout: how often an idle session checks the shutdown
    /// flag. Bounds shutdown latency, not request latency.
    pub poll_interval: Duration,
    /// Base per-session debugger configuration (strategy, workers,
    /// eval-cache, ...). A tenant's non-unlimited budget overrides
    /// `debug.budget`; `debug.max_joins` must match the shared lattice.
    pub debug: DebugConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            poll_interval: Duration::from_millis(100),
            debug: DebugConfig::default(),
        }
    }
}

/// Monotonic server-wide counters (relaxed atomics, mirrored after
/// [`kwdebug::metrics`]).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Sessions admitted (Hello accepted).
    pub sessions_admitted: AtomicU64,
    /// Sessions refused by tenant quota.
    pub sessions_rejected: AtomicU64,
    /// Sessions ended (any reason) after admission.
    pub sessions_closed: AtomicU64,
    /// Debug requests answered with a report.
    pub queries_ok: AtomicU64,
    /// Debug requests refused (`BadQuery`).
    pub queries_rejected: AtomicU64,
    /// Reports flagged degraded (budget tripped mid-traversal).
    pub reports_degraded: AtomicU64,
    /// Connections dropped for malformed frames.
    pub frames_malformed: AtomicU64,
}

impl ServerMetrics {
    /// One stable-JSON object (sorted keys), same discipline as
    /// [`kwdebug::metrics::MetricsSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames_malformed\":{},\"queries_ok\":{},\"queries_rejected\":{},\
             \"reports_degraded\":{},\"sessions_admitted\":{},\"sessions_closed\":{},\
             \"sessions_rejected\":{}}}",
            self.frames_malformed.load(Ordering::Relaxed),
            self.queries_ok.load(Ordering::Relaxed),
            self.queries_rejected.load(Ordering::Relaxed),
            self.reports_degraded.load(Ordering::Relaxed),
            self.sessions_admitted.load(Ordering::Relaxed),
            self.sessions_closed.load(Ordering::Relaxed),
            self.sessions_rejected.load(Ordering::Relaxed),
        )
    }
}

/// State shared by every worker thread.
struct Shared {
    parts: SharedParts,
    registry: Arc<TenantRegistry>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    config: ServeConfig,
}

/// A running debug service. Dropping without [`Server::shutdown`] detaches
/// the workers (they keep serving until the process exits); call `shutdown`
/// for a clean join.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `parts` under `config`, with `registry`
    /// deciding admission. Fails fast if `config.debug` does not fit the
    /// shared lattice (a misconfigured server should not accept a single
    /// connection).
    pub fn start(
        parts: SharedParts,
        registry: TenantRegistry,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        // Surface config/lattice mismatches now, not per connection.
        NonAnswerDebugger::from_shared(parts.clone(), config.debug)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            parts,
            registry: Arc::new(registry),
            metrics: ServerMetrics::default(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            config,
        });
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("kwserve-{worker_id}"))
                    .spawn(move || worker_loop(&listener, &shared))?,
            );
        }
        Ok(Server { addr, shared, workers: handles })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The admission registry (for live quota inspection).
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// tell idle sessions `ShuttingDown`, join every worker, and return the
    /// final counters.
    pub fn shutdown(self) -> ServerMetrics {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake workers blocked in accept(): one dummy connection each. A
        // worker serving a session ignores these; it sees the flag at its
        // next poll tick instead, so extras are harmlessly accepted-and-
        // dropped by whoever wakes first.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.workers {
            let _ = handle.join();
        }
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.metrics,
            Err(_) => ServerMetrics::default(),
        }
    }
}

fn worker_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // Woken by the shutdown dummy connection (or raced with it):
            // refuse politely and exit.
            let _ = send(
                &stream,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server shutting down".into(),
                },
            );
            return;
        }
        serve_connection(stream, shared);
    }
}

fn send(mut stream: &TcpStream, response: &Response) -> std::io::Result<()> {
    write_frame(&mut stream, &encode_response(response))?;
    stream.flush()
}

/// Whether a read error is this platform's read-timeout signal.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// One admitted session's mutable state.
struct Session {
    debugger: NonAnswerDebugger,
    /// Holds the tenant quota slot; released on drop (i.e. disconnect).
    _permit: SessionPermit,
    id: u64,
    tenant: String,
    queries: u64,
    interpretations: u64,
    probes: ProbeCounters,
    phases: PhaseTiming,
    last_query: String,
}

impl Session {
    /// Cumulative session metrics as one stable-JSON record. `variant`
    /// carries the tenant, `query` the last query served.
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            experiment: "kwserve".to_owned(),
            query: self.last_query.clone(),
            strategy: self.debugger.config().strategy.name().to_owned(),
            variant: format!("tenant={};session={};queries={}", self.tenant, self.id, self.queries),
            scale: String::new(),
            max_level: (self.debugger.config().max_joins + 1) as u64,
            interpretations: self.interpretations,
            lattice_bytes: self.debugger.lattice().memory_footprint().total_bytes() as u64,
            probes: self.probes,
            phases: self.phases,
            prune: None,
            levels: Vec::new(),
        }
    }
}

/// Runs one connection from handshake to disconnect.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut session: Option<Session> = None;
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // peer closed
            Err(e) if is_timeout(&e) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    let _ = send(
                        &stream,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server shutting down".into(),
                        },
                    );
                    break;
                }
                continue;
            }
            Err(_) => {
                shared.metrics.frames_malformed.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &stream,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: "unreadable frame".into(),
                    },
                );
                break;
            }
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared.metrics.frames_malformed.fetch_add(1, Ordering::Relaxed);
                let code = if e.0.contains("version") {
                    ErrorCode::UnsupportedVersion
                } else {
                    ErrorCode::Malformed
                };
                let _ = send(&stream, &Response::Error { code, message: e.0 });
                break;
            }
        };
        match (request, &mut session) {
            (Request::Hello { tenant }, None) => {
                match admit(shared, &tenant) {
                    Ok(new_session) => {
                        let id = new_session.id;
                        session = Some(new_session);
                        shared.metrics.sessions_admitted.fetch_add(1, Ordering::Relaxed);
                        if send(&stream, &Response::Welcome { session_id: id }).is_err() {
                            break;
                        }
                    }
                    Err(response) => {
                        shared.metrics.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = send(&stream, &response);
                        break;
                    }
                }
            }
            (Request::Hello { .. }, Some(_)) => {
                let _ = send(
                    &stream,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: "session already established".into(),
                    },
                );
                break;
            }
            (request, None) => {
                let _ = send(
                    &stream,
                    &Response::Error {
                        code: ErrorCode::NotReady,
                        message: format!("{request:?} before Hello"),
                    },
                );
                break;
            }
            (Request::Debug { strategy, query }, Some(session)) => {
                let response = run_debug(shared, session, strategy, &query);
                if send(&stream, &response).is_err() {
                    break;
                }
            }
            (Request::Metrics, Some(session)) => {
                let json = session.snapshot().to_json();
                if send(&stream, &Response::MetricsJson { json }).is_err() {
                    break;
                }
            }
            (Request::Bye, Some(_)) => {
                let _ = send(&stream, &Response::ByeAck);
                break;
            }
        }
    }
    if session.is_some() {
        shared.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }
    // Dropping `session` releases the tenant permit.
}

/// Admission: quota check, then an O(1) per-session debugger over the shared
/// substrate with the tenant's budget folded into the base config.
fn admit(shared: &Shared, tenant: &str) -> Result<Session, Response> {
    let permit = shared.registry.try_admit(tenant).ok_or_else(|| Response::Error {
        code: ErrorCode::QuotaExhausted,
        message: format!("tenant `{tenant}` is at its concurrent-session quota"),
    })?;
    let policy = shared.registry.policy(tenant);
    let mut config = shared.config.debug;
    if !policy.budget.is_unlimited() {
        config.budget = policy.budget;
    }
    let debugger =
        NonAnswerDebugger::from_shared(shared.parts.clone(), config).map_err(|e| {
            Response::Error { code: ErrorCode::Internal, message: e.to_string() }
        })?;
    Ok(Session {
        debugger,
        _permit: permit,
        id: shared.next_session.fetch_add(1, Ordering::Relaxed),
        tenant: tenant.to_owned(),
        queries: 0,
        interpretations: 0,
        probes: ProbeCounters::default(),
        phases: PhaseTiming::default(),
        last_query: String::new(),
    })
}

fn run_debug(
    shared: &Shared,
    session: &mut Session,
    strategy: Option<kwdebug::traversal::StrategyKind>,
    query: &str,
) -> Response {
    let start = Instant::now();
    let strategy = strategy.unwrap_or(session.debugger.config().strategy);
    match session.debugger.debug_with_strategy(query, strategy) {
        Ok(report) => {
            let degraded = !report.is_complete();
            session.queries += 1;
            session.interpretations += report.interpretations.len() as u64;
            session.probes.accumulate(report.probes());
            session.phases.accumulate(&report.timing);
            session.last_query = query.to_owned();
            shared.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
            if degraded {
                shared.metrics.reports_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Response::Report {
                degraded,
                server_ns: start.elapsed().as_nanos() as u64,
                payload: encode_report(&report),
            }
        }
        Err(e @ (KwError::EmptyQuery | KwError::BadConfig(_))) => {
            shared.metrics.queries_rejected.fetch_add(1, Ordering::Relaxed);
            Response::Error { code: ErrorCode::BadQuery, message: e.to_string() }
        }
        Err(e) => {
            shared.metrics.queries_rejected.fetch_add(1, Ordering::Relaxed);
            Response::Error { code: ErrorCode::Internal, message: e.to_string() }
        }
    }
}
