//! The TCP server: acceptor + dispatch queue + session workers, admission
//! control and load shedding, connection deadlines, panic isolation, and
//! server-level metrics.
//!
//! ## Threading model
//!
//! [`Server::start`] binds one [`TcpListener`] and spawns **one acceptor
//! thread** plus [`ServeConfig::workers`] session workers. The acceptor
//! never does per-connection work: it accepts, tries to take a slot from the
//! bounded in-flight gate ([`ServeConfig::max_inflight`]), and either hands
//! the connection to a worker through an in-process queue or — past the
//! high-water mark — answers `Error(Overloaded)` with a
//! [`ServeConfig::retry_after`] hint and closes. That is the load-shedding
//! contract: above capacity the server *sheds in O(1)* instead of letting
//! connections pile up in the OS backlog behind busy workers, so the
//! `Overloaded` answer arrives within one accept round-trip rather than
//! after an unbounded queue drains. Per-tenant fairness is still the
//! [`TenantRegistry`]'s job (session quotas and per-tenant in-flight request
//! caps, see `kwserve::tenant`).
//!
//! ## Connection deadlines
//!
//! Three clocks guard each connection, all distinct from the shutdown poll
//! tick ([`ServeConfig::poll_interval`]):
//!
//! * [`ServeConfig::frame_deadline`] — slowloris defense: a peer that has
//!   *started* a frame must finish it within this window or is disconnected
//!   with `Error(Timeout)`. The incremental [`FrameReader`] keeps partial
//!   bytes across poll ticks (fixing a latent torn-frame bug in the old
//!   blocking reader) and timestamps the frame's first byte.
//! * [`ServeConfig::idle_timeout`] — optional idle-session reaping between
//!   frames (off by default: an idle-but-polite session is cheap).
//! * [`ServeConfig::write_deadline`] — a peer that stops draining its
//!   receive window cannot block a worker forever; a timed-out write
//!   counts as `deadlines_hit` and drops the connection.
//!
//! ## Panic isolation
//!
//! Every `Debug` request runs under `catch_unwind`: a poisoned query (or an
//! injected chaos panic) answers `Error(Internal)` if the stream is still
//! writable and kills only its own connection, never the worker. All
//! accounting that must survive a panic — tenant session/request permits,
//! the in-flight gate slot — is RAII, released on unwind like any other
//! exit path.
//!
//! ## Per-session state
//!
//! Every admitted session builds its own [`NonAnswerDebugger`] via
//! [`NonAnswerDebugger::from_shared`]: a fresh workspace pool and the
//! tenant's budget, over the one shared immutable database/index/lattice.
//! The evaluation cache is private per session by default; with
//! [`ServeConfig::shared_cache`] set, sessions instead attach to one
//! process-wide [`SharedEvalCache`] keyed by the substrate's database
//! identity `(db_id, epoch)` and bounded by a byte-budget LRU, so
//! overlapping-keyword
//! tenants reuse each other's selections and subtree reductions (DESIGN.md
//! §12, CACHING.md; tenants opt out via `TenantPolicy::private_cache`).
//! Session construction is O(1), so a connection costs no Phase-0 work.
//! Under pressure, a configured
//! [`ServeConfig::request_deadline`] is scaled down by gate occupancy (see
//! [`scaled_deadline`]) and folded into the session's [`ProbeBudget`], so
//! late requests degrade to *sound partial reports* instead of timing out
//! silently.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips an atomic flag, pokes one dummy connection to
//! wake the acceptor, and notifies the workers' queue condvar. Workers
//! mid-session notice the flag at their next poll tick, answer
//! `ShuttingDown`, and exit; queued-but-unserved connections are drained
//! with `ShuttingDown` too. In-flight requests finish normally — a debug
//! call is never interrupted.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kwdebug::batch::{BatchConfig, WaveExchange};
use kwdebug::budget::ProbeBudget;
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger, SharedParts};
use kwdebug::evalcache::SharedEvalCache;
use kwdebug::metrics::{MetricsSnapshot, PhaseTiming, ProbeCounters};
use kwdebug::KwError;

use crate::chaos::{roll, ChaosConfig, ChaosStream};
use crate::protocol::{
    decode_request, encode_report, encode_response, write_frame, ErrorCode, FrameReader,
    Request, Response,
};
use crate::tenant::{SessionPermit, TenantRegistry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: SocketAddr,
    /// Worker threads — the concurrent-session *service* capacity.
    pub workers: usize,
    /// Session read timeout: how often an idle session checks the shutdown
    /// flag and its deadlines. Bounds shutdown latency, not request latency.
    pub poll_interval: Duration,
    /// High-water mark of the in-flight connection gate: connections being
    /// served plus connections queued for a worker. Past it, new connections
    /// are shed with `Overloaded`. `0` (the default) means auto:
    /// `2 × workers` — every worker busy plus one queued behind each.
    pub max_inflight: usize,
    /// Slowloris defense: a peer that has started a frame must deliver the
    /// whole frame within this window or is disconnected with
    /// `Error(Timeout)`.
    pub frame_deadline: Duration,
    /// Socket write timeout: a peer that stops draining its receive window
    /// for this long is disconnected (counted in `deadlines_hit`).
    pub write_deadline: Duration,
    /// Idle-session reaping: a session with no traffic for this long is
    /// disconnected with `Error(Timeout)`. `None` (default) keeps idle
    /// sessions forever, matching pre-hardening behavior.
    pub idle_timeout: Option<Duration>,
    /// Per-request wall-clock deadline folded into the session's
    /// [`ProbeBudget`] — scaled *down* under load (see [`scaled_deadline`])
    /// so that pressure degrades reports (soundly, with `Unknown` bounds)
    /// instead of queue-collapsing. `None` (default) propagates nothing.
    pub request_deadline: Option<Duration>,
    /// The `retry_after_ms` hint attached to `Overloaded` answers.
    pub retry_after: Duration,
    /// Deterministic network-fault injection on accepted streams (see
    /// `kwserve::chaos`). `None` (default) serves plain sockets; a quiet
    /// config is byte-for-byte transparent.
    pub chaos: Option<ChaosConfig>,
    /// Base per-session debugger configuration (strategy, workers,
    /// eval-cache, ...). A tenant's non-unlimited budget overrides
    /// `debug.budget`; `debug.max_joins` must match the shared lattice.
    pub debug: DebugConfig,
    /// Process-wide evaluation cache shared across every session of every
    /// tenant (`None`, the default, keeps the PR 5 behavior: one private
    /// cache per session). When set, the server creates one
    /// [`SharedEvalCache`] stamped with the substrate's database identity
    /// `(db_id, epoch)`, forces
    /// `debug.eval_cache` on, and hands the store to each admitted session —
    /// so a keyword one tenant warmed is free for the next. The byte-budget
    /// LRU bounds residency; tenants can opt out per policy
    /// (`TenantPolicy::private_cache`). See CACHING.md and SERVING.md §7.
    pub shared_cache: Option<SharedCacheConfig>,
    /// Cross-session batched probing (`None`, the default, keeps every
    /// session dispatching its own waves). When set, the server creates one
    /// [`WaveExchange`] and attaches it to each admitted session's debugger:
    /// concurrent sessions park each probe wave for up to
    /// `window_us`, duplicate probes (same canonical network on the same
    /// `(db_id, epoch)` snapshot) are coalesced into a single execution, and
    /// verdicts fan back to every subscriber in its original dispatch-slot
    /// order — reports stay byte-identical to unbatched runs. Single-session
    /// traffic bypasses the exchange entirely (`min_sessions`), so the
    /// uncontended p50 is untouched. See DESIGN.md §14 and SERVING.md.
    pub batching: Option<BatchConfig>,
}

/// Configuration of the process-wide shared evaluation cache
/// ([`ServeConfig::shared_cache`]).
#[derive(Debug, Clone, Copy)]
pub struct SharedCacheConfig {
    /// LRU byte budget of the store (`None` = unbounded — only sensible for
    /// benchmarks). Defaults to 64 MiB: enough to keep the hot keyword
    /// working set of dozens of tenants resident on the paper's scales while
    /// bounding worst-case memory per process.
    pub budget_bytes: Option<u64>,
    /// Also enable cross-session online `p_a` estimation
    /// (`DebugConfig::online_pa`): executed verdicts from all sessions drive
    /// SBH priors instead of the fixed 0.5. On by default — it never changes
    /// reports, only probe order.
    pub online_pa: bool,
}

impl Default for SharedCacheConfig {
    fn default() -> Self {
        SharedCacheConfig { budget_bytes: Some(64 << 20), online_pa: true }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            poll_interval: Duration::from_millis(100),
            max_inflight: 0,
            frame_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            idle_timeout: None,
            request_deadline: None,
            retry_after: Duration::from_millis(100),
            chaos: None,
            debug: DebugConfig::default(),
            shared_cache: None,
            batching: None,
        }
    }
}

impl ServeConfig {
    /// The effective in-flight gate capacity (resolves the `0` = auto rule).
    pub fn effective_max_inflight(&self) -> usize {
        if self.max_inflight == 0 {
            self.workers.max(1) * 2
        } else {
            self.max_inflight
        }
    }
}

/// Monotonic server-wide counters (relaxed atomics, mirrored after
/// [`kwdebug::metrics`]).
///
/// Accounting invariant (asserted by the chaos soak): once the server is
/// shut down,
/// `connections_accepted == sessions_shed + sessions_admitted +
/// sessions_rejected + conns_failed` and
/// `sessions_admitted == sessions_closed`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Dispatch waves the exchange merged across ≥ 2 parked sessions (gauge,
    /// refreshed at every Metrics read; 0 when batching is off).
    pub batch_merged_waves: AtomicU64,
    /// Per-mille share of parked probes answered by another session's
    /// in-flight execution: `coalesced * 1000 / submitted` (gauge; 0 when
    /// batching is off or nothing has been parked).
    pub batch_coalesce_ratio: AtomicU64,
    /// Connections accepted by the acceptor (excludes the shutdown wake-up).
    pub connections_accepted: AtomicU64,
    /// Connections shed at accept with `Overloaded` (gate at high water).
    pub sessions_shed: AtomicU64,
    /// `Debug` requests shed with `Overloaded` (tenant in-flight cap); the
    /// session survives.
    pub requests_shed: AtomicU64,
    /// Sessions admitted (Hello accepted).
    pub sessions_admitted: AtomicU64,
    /// Sessions refused by tenant quota.
    pub sessions_rejected: AtomicU64,
    /// Sessions ended (any reason) after admission.
    pub sessions_closed: AtomicU64,
    /// Accepted connections that ended without ever holding a session and
    /// without a counted rejection (peer vanished, pre-Hello protocol error,
    /// socket setup failure, drained at shutdown).
    pub conns_failed: AtomicU64,
    /// Debug requests answered with a report.
    pub queries_ok: AtomicU64,
    /// Debug requests refused (`BadQuery`).
    pub queries_rejected: AtomicU64,
    /// Reports flagged degraded (budget tripped mid-traversal).
    pub reports_degraded: AtomicU64,
    /// Frames or requests rejected as malformed (oversized length prefix,
    /// undecodable payload, protocol-state violations).
    pub frames_rejected: AtomicU64,
    /// Connection deadlines tripped: slowloris frames, idle reaping, and
    /// stuck writes.
    pub deadlines_hit: AtomicU64,
    /// Database write epoch of the served snapshot (gauge, fixed for the
    /// server's lifetime — a server holds one immutable snapshot; restart
    /// with the mutated [`SharedParts`] to serve a newer epoch).
    pub epoch: AtomicU64,
    /// Panics caught by per-request isolation (the connection dies, the
    /// worker survives).
    pub panics_caught: AtomicU64,
    /// Faults injected by `ChaosStream`s (shared with every wrapped
    /// connection; 0 when chaos is off or quiet).
    pub chaos_faults_injected: Arc<AtomicU64>,
    /// Aliveness probes executed across every session's reports (the
    /// probes-per-request denominator of E18's cache-efficiency ratio).
    pub probes_executed: AtomicU64,
    /// Resident bytes of the shared evaluation cache (gauge, refreshed at
    /// every Metrics read; 0 when `shared_cache` is off).
    pub shared_cache_bytes: AtomicU64,
    /// Entries evicted by the shared cache's LRU byte budget.
    pub shared_cache_evictions: AtomicU64,
    /// Lookups answered from the shared cache, across all sessions/layers.
    pub shared_cache_hits: AtomicU64,
    /// Shared-cache lookups that found nothing.
    pub shared_cache_misses: AtomicU64,
}

impl ServerMetrics {
    /// One stable-JSON object (sorted keys), same discipline as
    /// [`kwdebug::metrics::MetricsSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"batch_coalesce_ratio\":{},\"batch_merged_waves\":{},\
             \"chaos_faults_injected\":{},\"connections_accepted\":{},\"conns_failed\":{},\
             \"deadlines_hit\":{},\"epoch\":{},\"frames_rejected\":{},\"panics_caught\":{},\
             \"probes_executed\":{},\"queries_ok\":{},\"queries_rejected\":{},\
             \"reports_degraded\":{},\"requests_shed\":{},\"sessions_admitted\":{},\
             \"sessions_closed\":{},\"sessions_rejected\":{},\"sessions_shed\":{},\
             \"shared_cache_bytes\":{},\"shared_cache_evictions\":{},\
             \"shared_cache_hits\":{},\"shared_cache_misses\":{}}}",
            self.batch_coalesce_ratio.load(Ordering::Relaxed),
            self.batch_merged_waves.load(Ordering::Relaxed),
            self.chaos_faults_injected.load(Ordering::Relaxed),
            self.connections_accepted.load(Ordering::Relaxed),
            self.conns_failed.load(Ordering::Relaxed),
            self.deadlines_hit.load(Ordering::Relaxed),
            self.epoch.load(Ordering::Relaxed),
            self.frames_rejected.load(Ordering::Relaxed),
            self.panics_caught.load(Ordering::Relaxed),
            self.probes_executed.load(Ordering::Relaxed),
            self.queries_ok.load(Ordering::Relaxed),
            self.queries_rejected.load(Ordering::Relaxed),
            self.reports_degraded.load(Ordering::Relaxed),
            self.requests_shed.load(Ordering::Relaxed),
            self.sessions_admitted.load(Ordering::Relaxed),
            self.sessions_closed.load(Ordering::Relaxed),
            self.sessions_rejected.load(Ordering::Relaxed),
            self.sessions_shed.load(Ordering::Relaxed),
            self.shared_cache_bytes.load(Ordering::Relaxed),
            self.shared_cache_evictions.load(Ordering::Relaxed),
            self.shared_cache_hits.load(Ordering::Relaxed),
            self.shared_cache_misses.load(Ordering::Relaxed),
        )
    }
}

/// The bounded in-flight connection gate: a lock-free counter with a
/// capacity, handed out as RAII [`InflightSlot`]s so a slot can never leak —
/// not on clean close, not on error, not on panic (unwind drops it).
struct InflightGate {
    count: AtomicUsize,
    capacity: usize,
}

impl InflightGate {
    fn try_acquire(self: &Arc<Self>) -> Option<InflightSlot> {
        let mut current = self.count.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                return None;
            }
            match self.count.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightSlot { gate: Arc::clone(self) }),
                Err(now) => current = now,
            }
        }
    }
}

/// One admitted connection's gate slot; dropping it (any exit path,
/// including unwind) frees the slot.
struct InflightSlot {
    gate: Arc<InflightGate>,
}

impl Drop for InflightSlot {
    fn drop(&mut self) {
        self.gate.count.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A connection the acceptor admitted, waiting for a worker.
struct PendingConn {
    stream: TcpStream,
    /// Held from accept to connection end; dropping releases the gate.
    slot: InflightSlot,
    /// Admission index — salts the connection's chaos schedule.
    index: u64,
}

/// State shared by the acceptor and every worker thread.
struct Shared {
    parts: SharedParts,
    registry: Arc<TenantRegistry>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    next_conn: AtomicU64,
    inflight: Arc<InflightGate>,
    queue: Mutex<VecDeque<PendingConn>>,
    queue_cv: Condvar,
    config: ServeConfig,
    /// The process-wide evaluation cache, when [`ServeConfig::shared_cache`]
    /// is set (also attached inside `parts`; kept here for metrics refresh).
    shared_cache: Option<SharedEvalCache>,
    /// The cross-session wave exchange, when [`ServeConfig::batching`] is
    /// set. Cloned into every admitted session's debugger.
    exchange: Option<Arc<WaveExchange>>,
}

impl Shared {
    /// Mirrors the shared store's live counters into [`ServerMetrics`]
    /// (gauges, overwritten on every refresh). No-op without a shared cache.
    fn refresh_cache_metrics(&self) {
        let Some(cache) = &self.shared_cache else { return };
        self.metrics.shared_cache_bytes.store(cache.bytes(), Ordering::Relaxed);
        self.metrics.shared_cache_evictions.store(cache.evictions(), Ordering::Relaxed);
        self.metrics.shared_cache_hits.store(cache.hits(), Ordering::Relaxed);
        self.metrics.shared_cache_misses.store(cache.misses(), Ordering::Relaxed);
    }

    /// Mirrors the wave exchange's live counters into [`ServerMetrics`]
    /// (gauges, overwritten on every refresh). No-op without batching.
    fn refresh_batch_metrics(&self) {
        let Some(exchange) = &self.exchange else { return };
        self.metrics.batch_merged_waves.store(exchange.merged_waves(), Ordering::Relaxed);
        let submitted = exchange.submitted_probes();
        let ratio = exchange.coalesced_probes() * 1000 / submitted.max(1);
        self.metrics.batch_coalesce_ratio.store(ratio, Ordering::Relaxed);
    }
}

/// A running debug service. Dropping without [`Server::shutdown`] detaches
/// the threads (they keep serving until the process exits); call `shutdown`
/// for a clean join.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `parts` under `config`, with `registry`
    /// deciding admission. Fails fast if `config.debug` does not fit the
    /// shared lattice (a misconfigured server should not accept a single
    /// connection).
    pub fn start(
        parts: SharedParts,
        registry: TenantRegistry,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let mut parts = parts;
        let mut config = config;
        // The shared-cache knob: build one process-wide store stamped with
        // this substrate's (db_id, epoch) identity and attach it to the parts
        // every session is spawned from. Sessions need the eval cache on to
        // consult it.
        let shared_cache = config.shared_cache.map(|sc| {
            config.debug.eval_cache = true;
            if sc.online_pa {
                config.debug.online_pa = true;
            }
            parts.share_eval_cache(sc.budget_bytes)
        });
        // The batching knob: one process-wide exchange; handed to every
        // session at admission. Validate the knobs up front — a degenerate
        // wave cap should not take a single connection down later.
        let exchange = match &config.batching {
            None => None,
            Some(bc) => {
                bc.validate().map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
                })?;
                Some(Arc::new(WaveExchange::new(*bc)))
            }
        };
        // Surface config/lattice mismatches now, not per connection.
        NonAnswerDebugger::from_shared(parts.clone(), config.debug)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let capacity = config.effective_max_inflight();
        let epoch = parts.epoch();
        let shared = Arc::new(Shared {
            parts,
            registry: Arc::new(registry),
            metrics: ServerMetrics::default(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            next_conn: AtomicU64::new(0),
            inflight: Arc::new(InflightGate { count: AtomicUsize::new(0), capacity }),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            config,
            shared_cache,
            exchange,
        });
        shared.metrics.epoch.store(epoch, Ordering::Relaxed);
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("kwserve-accept".to_owned())
                    .spawn(move || acceptor_loop(&listener, &shared))?,
            );
        }
        for worker_id in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("kwserve-{worker_id}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server { addr, shared, threads })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters (shared-cache gauges refreshed on each call).
    pub fn metrics(&self) -> &ServerMetrics {
        self.shared.refresh_cache_metrics();
        self.shared.refresh_batch_metrics();
        &self.shared.metrics
    }

    /// The process-wide evaluation cache, when the server was started with
    /// [`ServeConfig::shared_cache`] (live counters for benches/dashboards).
    pub fn shared_cache(&self) -> Option<&SharedEvalCache> {
        self.shared.shared_cache.as_ref()
    }

    /// The cross-session wave exchange, when the server was started with
    /// [`ServeConfig::batching`] (live gauges for benches/tests).
    pub fn wave_exchange(&self) -> Option<&Arc<WaveExchange>> {
        self.shared.exchange.as_ref()
    }

    /// The admission registry (for live quota inspection).
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// Connections currently holding an in-flight gate slot (serving or
    /// queued). Must be zero after [`Server::shutdown`] — the soak test's
    /// leak check.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.count.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// tell idle and queued sessions `ShuttingDown`, join every thread, and
    /// return the final counters.
    pub fn shutdown(self) -> ServerMetrics {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor blocked in accept() with one dummy connection,
        // and the workers waiting on the queue condvar.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        for handle in self.threads {
            let _ = handle.join();
        }
        self.shared.refresh_cache_metrics();
        self.shared.refresh_batch_metrics();
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.metrics,
            Err(_) => ServerMetrics::default(),
        }
    }
}

/// Scales a request deadline by gate pressure: full `base` while the gate is
/// at most half full, then shrinking linearly to `base / 4` at capacity.
/// Pure integer math so tests can pin exact values.
pub fn scaled_deadline(base: Duration, inflight: usize, capacity: usize) -> Duration {
    if capacity == 0 || inflight * 2 <= capacity {
        return base;
    }
    let over = (inflight.min(capacity) * 2 - capacity) as u64;
    let nanos = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    let shrink = nanos / 4 * 3 / (capacity as u64) * over;
    Duration::from_nanos(nanos.saturating_sub(shrink))
}

/// Accept loop: admit through the gate or shed with `Overloaded`.
fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // Woken by the shutdown dummy connection (or raced with it):
            // refuse politely and exit. Not counted as accepted.
            refuse(
                stream,
                shared,
                &Response::error(ErrorCode::ShuttingDown, "server shutting down"),
            );
            return;
        }
        shared.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
        match shared.inflight.try_acquire() {
            Some(slot) => {
                let index = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let mut queue = shared.queue.lock().expect("queue lock");
                queue.push_back(PendingConn { stream, slot, index });
                drop(queue);
                shared.queue_cv.notify_one();
            }
            None => {
                // Shed, don't queue: the whole point of the gate is that
                // this answer goes out immediately while workers are busy.
                shared.metrics.sessions_shed.fetch_add(1, Ordering::Relaxed);
                refuse(
                    stream,
                    shared,
                    &Response::overloaded(
                        shared.config.retry_after,
                        "server at in-flight capacity",
                    ),
                );
            }
        }
    }
}

/// Best-effort one-shot answer on a connection we will not serve. Bounded by
/// the write deadline so a hostile peer cannot stall the acceptor.
///
/// After the frame, the write side is shut down and the peer's unread bytes
/// (typically its in-flight `Hello`) are drained briefly: closing with
/// unread data in the receive buffer makes the kernel send RST and discard
/// our queued answer, so without the drain the shed client would see a
/// broken pipe instead of the typed `Overloaded` + retry hint. The drain is
/// tightly bounded (few reads, short timeout) so a hostile peer cannot turn
/// it into an acceptor stall.
fn refuse(stream: TcpStream, shared: &Shared, response: &Response) {
    if stream.set_write_timeout(Some(shared.config.write_deadline)).is_err() {
        return;
    }
    let mut stream = stream;
    if write_frame(&mut stream, &encode_response(response)).and_then(|()| stream.flush()).is_err()
    {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    if stream.set_read_timeout(Some(Duration::from_millis(25))).is_err() {
        return;
    }
    let mut sink = [0u8; 512];
    for _ in 0..16 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break, // FIN received, or we gave up waiting
            Ok(_) => {}
        }
    }
}

/// Session worker: pull admitted connections off the queue and serve each to
/// completion. The per-connection `catch_unwind` is a backstop — request
/// panics are already isolated inside `serve_connection` — so one broken
/// connection can never take the worker down.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, shared.config.poll_interval)
                    .expect("queue lock");
                queue = guard;
            }
        };
        let Some(conn) = conn else { return };
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain: this connection was admitted but never served.
            shared.metrics.conns_failed.fetch_add(1, Ordering::Relaxed);
            refuse(
                conn.stream,
                shared,
                &Response::error(ErrorCode::ShuttingDown, "server shutting down"),
            );
            continue;
        }
        let PendingConn { stream, slot, index } = conn;
        if catch_unwind(AssertUnwindSafe(|| serve_connection(stream, index, shared))).is_err() {
            // Should be unreachable (request panics are caught inside); if
            // the framing layer itself panics, record it and keep serving.
            shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
            shared.metrics.conns_failed.fetch_add(1, Ordering::Relaxed);
        }
        drop(slot);
    }
}

/// The stream a session runs over: plain, or wrapped in deterministic fault
/// injection.
enum Transport {
    Plain(TcpStream),
    Chaos(ChaosStream<TcpStream>),
}

impl std::io::Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => std::io::Read::read(s, buf),
            Transport::Chaos(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.write(buf),
            Transport::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Plain(s) => s.flush(),
            Transport::Chaos(s) => s.flush(),
        }
    }
}

/// Frames a response onto the transport. A timed-out write counts as a hit
/// deadline; any failure means the connection is done.
fn send(transport: &mut Transport, shared: &Shared, response: &Response) -> bool {
    match write_frame(transport, &encode_response(response))
        .and_then(|()| std::io::Write::flush(transport))
    {
        Ok(()) => true,
        Err(e) => {
            if is_timeout(&e) {
                shared.metrics.deadlines_hit.fetch_add(1, Ordering::Relaxed);
            }
            false
        }
    }
}

/// Whether an IO error is this platform's socket-timeout signal.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// One admitted session's mutable state.
struct Session {
    debugger: NonAnswerDebugger,
    /// Holds the tenant quota slot; released on drop (i.e. disconnect).
    _permit: SessionPermit,
    id: u64,
    tenant: String,
    /// The session's configured budget before any per-request deadline is
    /// folded in (the fold must not compound across requests).
    base_budget: ProbeBudget,
    queries: u64,
    interpretations: u64,
    probes: ProbeCounters,
    phases: PhaseTiming,
    last_query: String,
}

impl Session {
    /// Cumulative session metrics as one stable-JSON record. `variant`
    /// carries the tenant, `query` the last query served.
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            experiment: "kwserve".to_owned(),
            query: self.last_query.clone(),
            strategy: self.debugger.config().strategy.name().to_owned(),
            variant: format!("tenant={};session={};queries={}", self.tenant, self.id, self.queries),
            scale: String::new(),
            max_level: (self.debugger.config().max_joins + 1) as u64,
            interpretations: self.interpretations,
            lattice_bytes: self.debugger.lattice().memory_footprint().total_bytes() as u64,
            probes: self.probes,
            phases: self.phases,
            prune: None,
            levels: Vec::new(),
        }
    }
}

/// Runs one admitted connection from handshake to disconnect.
fn serve_connection(stream: TcpStream, conn_index: u64, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    // A socket that cannot honor timeouts must be rejected at accept: it
    // could otherwise dribble or stall forever, immune to every deadline
    // below.
    if stream.set_read_timeout(Some(shared.config.poll_interval)).is_err()
        || stream.set_write_timeout(Some(shared.config.write_deadline)).is_err()
    {
        shared.metrics.conns_failed.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut transport = match shared.config.chaos {
        Some(config) => Transport::Chaos(ChaosStream::new(
            stream,
            config,
            conn_index,
            Arc::clone(&shared.metrics.chaos_faults_injected),
        )),
        None => Transport::Plain(stream),
    };
    let mut panic_rng = shared.config.chaos.map(|c| c.panic_rng(conn_index));
    let mut reader = FrameReader::new();
    let mut session: Option<Session> = None;
    let mut rejected = false;
    let mut last_activity = Instant::now();
    loop {
        let payload = match reader.poll(&mut transport) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // peer closed at a frame boundary
            Err(e) if is_timeout(&e) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    let _ = send(
                        &mut transport,
                        shared,
                        &Response::error(ErrorCode::ShuttingDown, "server shutting down"),
                    );
                    break;
                }
                if reader.mid_frame()
                    && reader.frame_age().is_some_and(|age| age > shared.config.frame_deadline)
                {
                    shared.metrics.deadlines_hit.fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut transport,
                        shared,
                        &Response::error(
                            ErrorCode::Timeout,
                            "frame not completed within the frame deadline",
                        ),
                    );
                    break;
                }
                if !reader.mid_frame()
                    && shared
                        .config
                        .idle_timeout
                        .is_some_and(|idle| last_activity.elapsed() > idle)
                {
                    shared.metrics.deadlines_hit.fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut transport,
                        shared,
                        &Response::error(ErrorCode::Timeout, "idle session reaped"),
                    );
                    break;
                }
                continue;
            }
            Err(e) => {
                // Oversized length prefixes are a protocol violation worth
                // answering; torn frames / resets mean the peer is gone.
                if e.kind() == std::io::ErrorKind::InvalidData {
                    shared.metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut transport,
                        shared,
                        &Response::error(ErrorCode::Malformed, "unreadable frame"),
                    );
                }
                break;
            }
        };
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                shared.metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let code = if e.0.contains("version") {
                    ErrorCode::UnsupportedVersion
                } else {
                    ErrorCode::Malformed
                };
                let _ = send(&mut transport, shared, &Response::error(code, e.0));
                break;
            }
        };
        match (request, &mut session) {
            (Request::Hello { tenant, pin_epoch }, None) => {
                let epoch = shared.parts.epoch();
                if let Some(pin) = pin_epoch {
                    if pin != epoch {
                        // Refuse rather than silently serve a different
                        // database state than the client proved it saw.
                        shared.metrics.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                        rejected = true;
                        let _ = send(
                            &mut transport,
                            shared,
                            &Response::error(
                                ErrorCode::StaleEpoch,
                                format!("pinned epoch {pin}, server serves epoch {epoch}"),
                            ),
                        );
                        break;
                    }
                }
                match admit(shared, &tenant) {
                    Ok(new_session) => {
                        let id = new_session.id;
                        session = Some(new_session);
                        shared.metrics.sessions_admitted.fetch_add(1, Ordering::Relaxed);
                        if !send(
                            &mut transport,
                            shared,
                            &Response::Welcome { session_id: id, epoch },
                        ) {
                            break;
                        }
                    }
                    Err(response) => {
                        shared.metrics.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                        rejected = true;
                        let _ = send(&mut transport, shared, &response);
                        break;
                    }
                }
            }
            (Request::Hello { .. }, Some(_)) => {
                shared.metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut transport,
                    shared,
                    &Response::error(ErrorCode::Malformed, "session already established"),
                );
                break;
            }
            (request, None) => {
                let _ = send(
                    &mut transport,
                    shared,
                    &Response::error(ErrorCode::NotReady, format!("{request:?} before Hello")),
                );
                break;
            }
            (Request::Debug { strategy, query }, Some(session)) => {
                let Some(request_permit) = shared.registry.try_start_request(&session.tenant)
                else {
                    shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
                    // Shed the request, keep the session: the tenant can
                    // back off and retry on this same connection.
                    if !send(
                        &mut transport,
                        shared,
                        &Response::overloaded(
                            shared.config.retry_after,
                            "tenant at in-flight request cap",
                        ),
                    ) {
                        break;
                    }
                    last_activity = Instant::now();
                    continue;
                };
                let inject_panic = panic_rng.as_mut().is_some_and(|rng| {
                    roll(rng, shared.config.chaos.map_or(0, |c| c.panic_per_mille))
                });
                // Everything the request holds (the tenant request permit)
                // moves into the closure, so an unwind releases it exactly
                // like a clean return — permits can never leak to a panic.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let _held = request_permit;
                    if inject_panic {
                        panic!("chaos: injected query panic");
                    }
                    run_debug(shared, session, strategy, &query)
                }));
                match outcome {
                    Ok(response) => {
                        if !send(&mut transport, shared, &response) {
                            break;
                        }
                    }
                    Err(_) => {
                        // The query poisoned this session (or chaos said it
                        // did): answer if the stream still works, then kill
                        // only this connection.
                        shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
                        let _ = send(
                            &mut transport,
                            shared,
                            &Response::error(
                                ErrorCode::Internal,
                                "internal error while serving query",
                            ),
                        );
                        break;
                    }
                }
            }
            (Request::Metrics, Some(session)) => {
                // Composite: server-wide robustness counters alongside the
                // session's own snapshot, both stable-sorted (`"server"` <
                // `"session"`). Shared-cache gauges are refreshed first so
                // the wire always carries current residency.
                shared.refresh_cache_metrics();
                shared.refresh_batch_metrics();
                let json = format!(
                    "{{\"server\":{},\"session\":{}}}",
                    shared.metrics.to_json(),
                    session.snapshot().to_json()
                );
                if !send(&mut transport, shared, &Response::MetricsJson { json }) {
                    break;
                }
            }
            (Request::Bye, Some(_)) => {
                let _ = send(&mut transport, shared, &Response::ByeAck);
                break;
            }
        }
        last_activity = Instant::now();
    }
    // Accounting: every accepted-and-served connection ends in exactly one
    // bucket — closed session, counted rejection, or failure.
    if session.is_some() {
        shared.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
    } else if !rejected {
        shared.metrics.conns_failed.fetch_add(1, Ordering::Relaxed);
    }
    // Dropping `session` releases the tenant permit.
}

/// Admission: quota check, then an O(1) per-session debugger over the shared
/// substrate with the tenant's budget folded into the base config.
fn admit(shared: &Shared, tenant: &str) -> Result<Session, Response> {
    let permit = shared.registry.try_admit(tenant).ok_or_else(|| {
        Response::error(
            ErrorCode::QuotaExhausted,
            format!("tenant `{tenant}` is at its concurrent-session quota"),
        )
    })?;
    let policy = shared.registry.policy(tenant);
    let mut config = shared.config.debug;
    if !policy.budget.is_unlimited() {
        config.budget = policy.budget;
    }
    // Tenants opted out of the shared store get sessions over a cache-less
    // clone of the substrate: private evalcache, same shared p_a estimator.
    let parts = if policy.private_cache {
        shared.parts.without_shared_cache()
    } else {
        shared.parts.clone()
    };
    let mut debugger = NonAnswerDebugger::from_shared(parts, config)
        .map_err(|e| Response::error(ErrorCode::Internal, e.to_string()))?;
    // Batching: every session of every tenant shares one exchange. The
    // exchange groups by `(db_id, epoch)`, so even if sessions over distinct
    // snapshots ever shared a process, their waves could never merge; on
    // this server Hello.pin_epoch mismatches are refused before admission.
    debugger.set_wave_exchange(shared.exchange.clone());
    Ok(Session {
        debugger,
        _permit: permit,
        id: shared.next_session.fetch_add(1, Ordering::Relaxed),
        tenant: tenant.to_owned(),
        base_budget: config.budget,
        queries: 0,
        interpretations: 0,
        probes: ProbeCounters::default(),
        phases: PhaseTiming::default(),
        last_query: String::new(),
    })
}

fn run_debug(
    shared: &Shared,
    session: &mut Session,
    strategy: Option<kwdebug::traversal::StrategyKind>,
    query: &str,
) -> Response {
    let start = Instant::now();
    if let Some(base) = shared.config.request_deadline {
        // Fold the pressure-scaled request deadline into the session's base
        // budget (never loosening a stricter tenant deadline). Under load
        // this turns would-be stragglers into sound partial reports.
        let effective = scaled_deadline(
            base,
            shared.inflight.count.load(Ordering::Acquire),
            shared.inflight.capacity,
        );
        let mut budget = session.base_budget;
        budget.deadline = Some(budget.deadline.map_or(effective, |d| d.min(effective)));
        session.debugger.set_budget(budget);
    }
    let strategy = strategy.unwrap_or(session.debugger.config().strategy);
    match session.debugger.debug_with_strategy(query, strategy) {
        Ok(report) => {
            let degraded = !report.is_complete();
            session.queries += 1;
            session.interpretations += report.interpretations.len() as u64;
            session.probes.accumulate(report.probes());
            session.phases.accumulate(&report.timing);
            session.last_query = query.to_owned();
            shared.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .probes_executed
                .fetch_add(report.probes().probes_executed, Ordering::Relaxed);
            if degraded {
                shared.metrics.reports_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Response::Report {
                degraded,
                server_ns: start.elapsed().as_nanos() as u64,
                payload: encode_report(&report),
            }
        }
        Err(e @ (KwError::EmptyQuery | KwError::BadConfig(_))) => {
            shared.metrics.queries_rejected.fetch_add(1, Ordering::Relaxed);
            Response::error(ErrorCode::BadQuery, e.to_string())
        }
        Err(e) => {
            shared.metrics.queries_rejected.fetch_add(1, Ordering::Relaxed);
            Response::error(ErrorCode::Internal, e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_deadline_shrinks_linearly_under_pressure() {
        let base = Duration::from_millis(800);
        // At or below half capacity: untouched.
        assert_eq!(scaled_deadline(base, 0, 8), base);
        assert_eq!(scaled_deadline(base, 4, 8), base);
        // Full: a quarter of base.
        assert_eq!(scaled_deadline(base, 8, 8), Duration::from_millis(200));
        // Midway between half and full: halfway down, 5/8 of base.
        assert_eq!(scaled_deadline(base, 6, 8), Duration::from_millis(500));
        // Monotone and clamped.
        assert_eq!(scaled_deadline(base, 100, 8), Duration::from_millis(200));
        assert_eq!(scaled_deadline(base, 3, 0), base, "capacity 0 never scales");
    }

    #[test]
    fn inflight_gate_is_bounded_and_leak_free() {
        let gate = Arc::new(InflightGate { count: AtomicUsize::new(0), capacity: 2 });
        let a = gate.try_acquire().expect("slot 1");
        let b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "gate full");
        drop(a);
        let c = gate.try_acquire().expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(gate.count.load(Ordering::Acquire), 0);
        // Unwind releases like any other path.
        let gate2 = Arc::clone(&gate);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _slot = gate2.try_acquire().unwrap();
            panic!("boom");
        }));
        assert_eq!(gate.count.load(Ordering::Acquire), 0, "no leak on panic");
    }

    #[test]
    fn server_metrics_json_is_sorted_and_stable() {
        let m = ServerMetrics::default();
        m.queries_ok.store(3, Ordering::Relaxed);
        let json = m.to_json();
        let keys: Vec<&str> = json
            .split('"')
            .skip(1)
            .step_by(2)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "keys must be emitted sorted: {json}");
        assert!(json.contains("\"batch_coalesce_ratio\":0"));
        assert!(json.contains("\"batch_merged_waves\":0"));
        assert!(json.contains("\"queries_ok\":3"));
        assert!(json.contains("\"sessions_shed\":0"));
        assert!(json.contains("\"panics_caught\":0"));
        assert!(json.contains("\"probes_executed\":0"));
        assert!(json.contains("\"shared_cache_bytes\":0"));
        assert!(json.contains("\"shared_cache_evictions\":0"));
        assert!(json.contains("\"shared_cache_hits\":0"));
        assert!(json.contains("\"shared_cache_misses\":0"));
    }

    #[test]
    fn shared_cache_config_defaults_are_bounded() {
        let sc = SharedCacheConfig::default();
        assert_eq!(sc.budget_bytes, Some(64 << 20), "bounded by default");
        assert!(sc.online_pa, "online p_a rides along by default");
        assert!(ServeConfig::default().shared_cache.is_none(), "knob is opt-in");
    }

    #[test]
    fn batching_knob_is_opt_in_and_validated_at_start() {
        assert!(ServeConfig::default().batching.is_none(), "knob is opt-in");
        let bc = BatchConfig::default();
        assert!(bc.validate().is_ok(), "defaults are sane");
        assert!(BatchConfig { max_wave: 0, ..bc }.validate().is_err());
        assert!(BatchConfig { min_sessions: 0, ..bc }.validate().is_err());
    }
}
