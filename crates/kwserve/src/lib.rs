//! # kwserve — a multi-tenant TCP front-end over the `kwdebug` library
//!
//! The paper frames non-answer debugging as an *interactive* capability of a
//! keyword search system; this crate is the serving layer that makes the
//! reproduction measurable under concurrency. It follows the library-first
//! pattern: [`kwdebug`] stays a pure library and `kwserve` is a thin,
//! **registry-free, std-only** network shell around it — a hand-rolled,
//! length-prefixed binary protocol over [`std::net::TcpListener`] with a
//! worker-pool accept loop. No async runtime, no HTTP framework, no external
//! dependency: the same discipline as the rest of the workspace.
//!
//! The normative wire-protocol specification and the operations guide live
//! in `SERVING.md`; the architecture chapter (state split, thread model,
//! why sessions never share private evaluation-cache state across database
//! epochs) is DESIGN.md §11. In code:
//!
//! * [`protocol`] — framing, request/response codecs, and the *canonical
//!   report encoding* whose payloads are bit-identical to direct library
//!   calls (the loopback equivalence test pins this).
//! * [`tenant`] — admission control: per-tenant concurrent-session quotas
//!   and per-query [`kwdebug::budget::ProbeBudget`]s; budget-degraded
//!   queries cross the wire as flagged partial reports with sound MPAN
//!   bounds.
//! * [`server`] — the acceptor + worker-pool
//!   [`TcpListener`](std::net::TcpListener) loop, bounded in-flight
//!   admission with `Overloaded` load shedding, per-connection frame/idle/
//!   write deadlines, per-request panic isolation, session lifecycle over
//!   [`kwdebug::SharedParts`] (one immutable database + index + lattice
//!   arena shared by every session), graceful shutdown, and server metrics.
//! * [`chaos`] — deterministic, seeded network-fault injection
//!   ([`ChaosStream`]) on the server's accepted streams: partial writes,
//!   read stalls, mid-frame resets, bit flips, injected query panics — the
//!   `relengine::chaos` discipline applied to the wire.
//! * [`client`] — the blocking clients (plain and reconnecting) the REPL
//!   client mode, the loopback/soak tests and the `exp_serve` load
//!   generator drive.
//!
//! ## A session in five lines
//!
//! ```no_run
//! use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
//! use kwserve::{DebugClient, ServeConfig, Server, TenantPolicy, TenantRegistry};
//! # fn run(db: relengine::Database) -> Result<(), Box<dyn std::error::Error>> {
//! let system = NonAnswerDebugger::new(db, DebugConfig::default())?;
//! let server = Server::start(
//!     system.shared_parts(),
//!     TenantRegistry::new(TenantPolicy::default()),
//!     ServeConfig::default(),
//! )?;
//! let mut client = DebugClient::connect(server.addr(), "acme")?;
//! println!("{}", client.debug("saffron candle")?.report);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use chaos::{ChaosConfig, ChaosStream};
pub use client::{ClientError, DebugClient, ReconnectPolicy, ResilientClient, WireReport};
pub use protocol::ErrorCode;
pub use server::{ServeConfig, Server, ServerMetrics, SharedCacheConfig};
pub use tenant::{TenantPolicy, TenantRegistry};
