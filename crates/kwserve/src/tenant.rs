//! Per-tenant admission control and budgets.
//!
//! A *tenant* is the unit of resource isolation: every session declares one
//! in its `Hello`, and the server applies that tenant's [`TenantPolicy`] —
//! a cap on concurrent sessions (admission control) and a per-query
//! [`ProbeBudget`] (work control). The two compose: admission bounds how
//! many debuggers a tenant can have resident, the budget bounds how much
//! probing each of its queries may do, and a query that hits its budget
//! degrades to a *partial* report with sound MPAN bounds (PR 2's guarantee)
//! rather than failing — exactly what crosses the wire as a
//! degraded-flagged report.
//!
//! Overload adds a third, finer cap: [`TenantPolicy::max_inflight_requests`]
//! bounds how many `Debug` requests a tenant may have *executing at once*
//! across all its sessions. A tenant that fans one session's worth of quota
//! into a burst of expensive queries gets `Overloaded` (with a retry hint)
//! on the excess instead of starving its neighbours; the session itself
//! survives. Global capacity (the server-wide in-flight gate) is handled in
//! the server; this module is only about fairness *between* tenants.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kwdebug::budget::ProbeBudget;

/// Resource limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Concurrent sessions this tenant may hold open (`usize::MAX` =
    /// unlimited). The `max_sessions + 1`-th `Hello` is rejected with
    /// `QuotaExhausted` — rejected, not queued, so one tenant can never
    /// occupy the whole worker pool.
    pub max_sessions: usize,
    /// Probe budget applied to every query of every session of this tenant
    /// (per interpretation, like [`kwdebug::DebugConfig::budget`]).
    /// Unlimited by default; a capped budget turns over-long queries into
    /// degraded partial reports instead of unbounded work.
    pub budget: ProbeBudget,
    /// Concurrent `Debug` requests this tenant may have executing at once,
    /// summed over all its sessions (`usize::MAX` = unlimited). The excess
    /// request is answered `Overloaded` with a retry hint — shed, not
    /// queued — while the session stays open.
    pub max_inflight_requests: usize,
    /// Opt this tenant out of the server's process-wide
    /// [`kwdebug::evalcache::SharedEvalCache`] (when `ServeConfig::
    /// shared_cache` is enabled): its sessions get private, session-scoped
    /// caches instead. Isolation knob for tenants whose query mix would
    /// thrash the shared LRU, or whose workload must not influence (or be
    /// influenced by) co-tenants' cache residency. No effect when the server
    /// runs without a shared cache.
    pub private_cache: bool,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            max_sessions: usize::MAX,
            budget: ProbeBudget::unlimited(),
            max_inflight_requests: usize::MAX,
            private_cache: false,
        }
    }
}

impl TenantPolicy {
    /// A policy capping concurrent sessions only.
    pub fn sessions(max_sessions: usize) -> TenantPolicy {
        TenantPolicy { max_sessions, ..TenantPolicy::default() }
    }

    /// Adds a per-query probe budget to this policy.
    pub fn with_budget(mut self, budget: ProbeBudget) -> TenantPolicy {
        self.budget = budget;
        self
    }

    /// Caps concurrent in-flight `Debug` requests across the tenant's
    /// sessions.
    pub fn with_max_inflight(mut self, max_inflight_requests: usize) -> TenantPolicy {
        self.max_inflight_requests = max_inflight_requests;
        self
    }

    /// Opts this tenant out of the server's shared evaluation cache (see
    /// [`TenantPolicy::private_cache`]).
    pub fn with_private_cache(mut self) -> TenantPolicy {
        self.private_cache = true;
        self
    }
}

/// The server's tenant table: explicit policies per known tenant plus a
/// default for everyone else, and the live per-tenant session counts.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    policies: HashMap<String, TenantPolicy>,
    default: TenantPolicy,
    /// Live per-tenant counts (only tenants with ≥ 1 live session or request
    /// have an entry, so idle tenants cost nothing).
    active: Mutex<HashMap<String, Counts>>,
}

/// Live usage of one tenant: both counters under the same lock so sessions
/// and requests can never skew against each other.
#[derive(Debug, Default, Clone, Copy)]
struct Counts {
    sessions: usize,
    requests: usize,
}

impl Counts {
    fn is_zero(&self) -> bool {
        self.sessions == 0 && self.requests == 0
    }
}

impl TenantRegistry {
    /// A registry where every tenant gets `default`.
    pub fn new(default: TenantPolicy) -> TenantRegistry {
        TenantRegistry { default, ..TenantRegistry::default() }
    }

    /// Sets an explicit policy for `tenant` (builder style).
    pub fn with_tenant(mut self, tenant: &str, policy: TenantPolicy) -> TenantRegistry {
        self.policies.insert(tenant.to_owned(), policy);
        self
    }

    /// The policy `tenant` is served under.
    pub fn policy(&self, tenant: &str) -> TenantPolicy {
        self.policies.get(tenant).copied().unwrap_or(self.default)
    }

    /// Live sessions `tenant` holds right now.
    pub fn active_sessions(&self, tenant: &str) -> usize {
        self.active.lock().expect("registry lock").get(tenant).map_or(0, |c| c.sessions)
    }

    /// `Debug` requests `tenant` has executing right now.
    pub fn active_requests(&self, tenant: &str) -> usize {
        self.active.lock().expect("registry lock").get(tenant).map_or(0, |c| c.requests)
    }

    /// Tries to admit one session for `tenant`: returns a [`SessionPermit`]
    /// that holds the slot until dropped, or `None` when the tenant is at
    /// its `max_sessions` quota. Check-and-increment happens under one lock,
    /// so racing `Hello`s can never overshoot the quota.
    pub fn try_admit(self: &Arc<Self>, tenant: &str) -> Option<SessionPermit> {
        let policy = self.policy(tenant);
        let mut active = self.active.lock().expect("registry lock");
        let counts = active.entry(tenant.to_owned()).or_default();
        if counts.sessions >= policy.max_sessions {
            return None;
        }
        counts.sessions += 1;
        Some(SessionPermit { registry: Arc::clone(self), tenant: tenant.to_owned() })
    }

    /// Tries to start one `Debug` request for `tenant`: returns a
    /// [`RequestPermit`] held for the duration of the request, or `None`
    /// when the tenant is at its `max_inflight_requests` cap (the caller
    /// answers `Overloaded` and keeps the session open). Same single-lock
    /// check-and-increment discipline as [`TenantRegistry::try_admit`].
    pub fn try_start_request(self: &Arc<Self>, tenant: &str) -> Option<RequestPermit> {
        let policy = self.policy(tenant);
        let mut active = self.active.lock().expect("registry lock");
        let counts = active.entry(tenant.to_owned()).or_default();
        if counts.requests >= policy.max_inflight_requests {
            return None;
        }
        counts.requests += 1;
        Some(RequestPermit { registry: Arc::clone(self), tenant: tenant.to_owned() })
    }

    fn release(&self, tenant: &str, f: impl FnOnce(&mut Counts)) {
        let mut active = self.active.lock().expect("registry lock");
        if let Some(counts) = active.get_mut(tenant) {
            f(counts);
            if counts.is_zero() {
                active.remove(tenant);
            }
        }
    }
}

/// An admitted session's slot; dropping it releases the tenant's quota.
#[derive(Debug)]
pub struct SessionPermit {
    registry: Arc<TenantRegistry>,
    tenant: String,
}

impl SessionPermit {
    /// The tenant this permit belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.registry.release(&self.tenant, |c| c.sessions -= 1);
    }
}

/// One executing `Debug` request's slot; dropping it (on any exit path,
/// including unwind) releases the tenant's in-flight cap.
#[derive(Debug)]
pub struct RequestPermit {
    registry: Arc<TenantRegistry>,
    tenant: String,
}

impl Drop for RequestPermit {
    fn drop(&mut self) {
        self.registry.release(&self.tenant, |c| c.requests -= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_unlimited() {
        let p = TenantPolicy::default();
        assert_eq!(p.max_sessions, usize::MAX);
        assert!(p.budget.is_unlimited());
        assert_eq!(p.max_inflight_requests, usize::MAX);
    }

    #[test]
    fn request_cap_enforced_and_survives_unwind() {
        let reg = Arc::new(
            TenantRegistry::new(TenantPolicy::default())
                .with_tenant("bursty", TenantPolicy::default().with_max_inflight(2)),
        );
        let a = reg.try_start_request("bursty").expect("first request fits");
        let b = reg.try_start_request("bursty").expect("second request fits");
        assert_eq!(reg.active_requests("bursty"), 2);
        assert!(reg.try_start_request("bursty").is_none(), "cap of 2 is full");
        assert!(
            reg.try_start_request("other").is_some(),
            "caps are per tenant"
        );
        drop(a);
        drop(b);
        // A panicking request still releases its permit via Drop.
        let reg2 = Arc::clone(&reg);
        let _ = std::panic::catch_unwind(move || {
            let _p = reg2.try_start_request("bursty").unwrap();
            panic!("poisoned query");
        });
        assert_eq!(reg.active_requests("bursty"), 0, "no leaked request permits");
    }

    #[test]
    fn sessions_and_requests_are_independent_counts() {
        let reg = Arc::new(TenantRegistry::new(
            TenantPolicy::sessions(1).with_max_inflight(1),
        ));
        let s = reg.try_admit("t").unwrap();
        let r = reg.try_start_request("t").unwrap();
        assert_eq!(reg.active_sessions("t"), 1);
        assert_eq!(reg.active_requests("t"), 1);
        drop(s);
        assert_eq!(reg.active_sessions("t"), 0);
        assert_eq!(reg.active_requests("t"), 1, "request outlives its session's permit");
        drop(r);
        assert_eq!(reg.active_requests("t"), 0);
    }

    #[test]
    fn quota_enforced_and_released() {
        let reg = Arc::new(
            TenantRegistry::new(TenantPolicy::default())
                .with_tenant("small", TenantPolicy::sessions(1)),
        );
        let permit = reg.try_admit("small").expect("first session fits");
        assert_eq!(reg.active_sessions("small"), 1);
        assert!(reg.try_admit("small").is_none(), "quota of 1 is full");
        drop(permit);
        assert_eq!(reg.active_sessions("small"), 0);
        assert!(reg.try_admit("small").is_some(), "slot came back");
    }

    #[test]
    fn unknown_tenants_use_default() {
        let reg = Arc::new(TenantRegistry::new(TenantPolicy::sessions(2)));
        let a = reg.try_admit("anyone").unwrap();
        let _b = reg.try_admit("anyone").unwrap();
        assert!(reg.try_admit("anyone").is_none());
        assert!(reg.try_admit("someone-else").is_some(), "quotas are per tenant");
        drop(a);
        assert!(reg.try_admit("anyone").is_some());
    }

    #[test]
    fn admission_is_race_free() {
        let reg = Arc::new(TenantRegistry::new(TenantPolicy::sessions(10)));
        // Permits park here so none is released while threads still race.
        let held = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..5 {
                        if let Some(p) = reg.try_admit("t") {
                            held.lock().unwrap().push(p);
                        }
                    }
                });
            }
        });
        assert_eq!(held.lock().unwrap().len(), 10, "exactly the quota admitted");
        assert_eq!(reg.active_sessions("t"), 10);
        held.lock().unwrap().clear();
        assert_eq!(reg.active_sessions("t"), 0, "all permits released");
    }
}
