//! Per-tenant admission control and budgets.
//!
//! A *tenant* is the unit of resource isolation: every session declares one
//! in its `Hello`, and the server applies that tenant's [`TenantPolicy`] —
//! a cap on concurrent sessions (admission control) and a per-query
//! [`ProbeBudget`] (work control). The two compose: admission bounds how
//! many debuggers a tenant can have resident, the budget bounds how much
//! probing each of its queries may do, and a query that hits its budget
//! degrades to a *partial* report with sound MPAN bounds (PR 2's guarantee)
//! rather than failing — exactly what crosses the wire as a
//! degraded-flagged report.
//!
//! Global capacity is handled elsewhere (the worker pool: when every worker
//! is busy, new connections queue in the OS accept backlog); this module is
//! only about fairness *between* tenants.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kwdebug::budget::ProbeBudget;

/// Resource limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Concurrent sessions this tenant may hold open (`usize::MAX` =
    /// unlimited). The `max_sessions + 1`-th `Hello` is rejected with
    /// `QuotaExhausted` — rejected, not queued, so one tenant can never
    /// occupy the whole worker pool.
    pub max_sessions: usize,
    /// Probe budget applied to every query of every session of this tenant
    /// (per interpretation, like [`kwdebug::DebugConfig::budget`]).
    /// Unlimited by default; a capped budget turns over-long queries into
    /// degraded partial reports instead of unbounded work.
    pub budget: ProbeBudget,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy { max_sessions: usize::MAX, budget: ProbeBudget::unlimited() }
    }
}

impl TenantPolicy {
    /// A policy capping concurrent sessions only.
    pub fn sessions(max_sessions: usize) -> TenantPolicy {
        TenantPolicy { max_sessions, ..TenantPolicy::default() }
    }

    /// Adds a per-query probe budget to this policy.
    pub fn with_budget(mut self, budget: ProbeBudget) -> TenantPolicy {
        self.budget = budget;
        self
    }
}

/// The server's tenant table: explicit policies per known tenant plus a
/// default for everyone else, and the live per-tenant session counts.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    policies: HashMap<String, TenantPolicy>,
    default: TenantPolicy,
    /// Live session count per tenant name (only tenants with ≥ 1 session
    /// have an entry, so idle tenants cost nothing).
    active: Mutex<HashMap<String, usize>>,
}

impl TenantRegistry {
    /// A registry where every tenant gets `default`.
    pub fn new(default: TenantPolicy) -> TenantRegistry {
        TenantRegistry { default, ..TenantRegistry::default() }
    }

    /// Sets an explicit policy for `tenant` (builder style).
    pub fn with_tenant(mut self, tenant: &str, policy: TenantPolicy) -> TenantRegistry {
        self.policies.insert(tenant.to_owned(), policy);
        self
    }

    /// The policy `tenant` is served under.
    pub fn policy(&self, tenant: &str) -> TenantPolicy {
        self.policies.get(tenant).copied().unwrap_or(self.default)
    }

    /// Live sessions `tenant` holds right now.
    pub fn active_sessions(&self, tenant: &str) -> usize {
        self.active.lock().expect("registry lock").get(tenant).copied().unwrap_or(0)
    }

    /// Tries to admit one session for `tenant`: returns a [`SessionPermit`]
    /// that holds the slot until dropped, or `None` when the tenant is at
    /// its `max_sessions` quota. Check-and-increment happens under one lock,
    /// so racing `Hello`s can never overshoot the quota.
    pub fn try_admit(self: &Arc<Self>, tenant: &str) -> Option<SessionPermit> {
        let policy = self.policy(tenant);
        let mut active = self.active.lock().expect("registry lock");
        let count = active.entry(tenant.to_owned()).or_insert(0);
        if *count >= policy.max_sessions {
            return None;
        }
        *count += 1;
        Some(SessionPermit { registry: Arc::clone(self), tenant: tenant.to_owned() })
    }
}

/// An admitted session's slot; dropping it releases the tenant's quota.
#[derive(Debug)]
pub struct SessionPermit {
    registry: Arc<TenantRegistry>,
    tenant: String,
}

impl SessionPermit {
    /// The tenant this permit belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        let mut active = self.registry.active.lock().expect("registry lock");
        if let Some(count) = active.get_mut(&self.tenant) {
            *count -= 1;
            if *count == 0 {
                active.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_unlimited() {
        let p = TenantPolicy::default();
        assert_eq!(p.max_sessions, usize::MAX);
        assert!(p.budget.is_unlimited());
    }

    #[test]
    fn quota_enforced_and_released() {
        let reg = Arc::new(
            TenantRegistry::new(TenantPolicy::default())
                .with_tenant("small", TenantPolicy::sessions(1)),
        );
        let permit = reg.try_admit("small").expect("first session fits");
        assert_eq!(reg.active_sessions("small"), 1);
        assert!(reg.try_admit("small").is_none(), "quota of 1 is full");
        drop(permit);
        assert_eq!(reg.active_sessions("small"), 0);
        assert!(reg.try_admit("small").is_some(), "slot came back");
    }

    #[test]
    fn unknown_tenants_use_default() {
        let reg = Arc::new(TenantRegistry::new(TenantPolicy::sessions(2)));
        let a = reg.try_admit("anyone").unwrap();
        let _b = reg.try_admit("anyone").unwrap();
        assert!(reg.try_admit("anyone").is_none());
        assert!(reg.try_admit("someone-else").is_some(), "quotas are per tenant");
        drop(a);
        assert!(reg.try_admit("anyone").is_some());
    }

    #[test]
    fn admission_is_race_free() {
        let reg = Arc::new(TenantRegistry::new(TenantPolicy::sessions(10)));
        // Permits park here so none is released while threads still race.
        let held = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..5 {
                        if let Some(p) = reg.try_admit("t") {
                            held.lock().unwrap().push(p);
                        }
                    }
                });
            }
        });
        assert_eq!(held.lock().unwrap().len(), 10, "exactly the quota admitted");
        assert_eq!(reg.active_sessions("t"), 10);
        held.lock().unwrap().clear();
        assert_eq!(reg.active_sessions("t"), 0, "all permits released");
    }
}
