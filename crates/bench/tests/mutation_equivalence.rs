//! Differential suite for the mutable-database write path (DESIGN.md §13).
//!
//! The contract under test: after any sequence of writes through
//! [`MutableDatabase`] — epoch bumps, incremental index deltas,
//! merge-on-read postings, threshold compaction, selective cache
//! invalidation — a debug session over the mutated coordinator produces a
//! report **bit-identical** (canonical encoding, wall-clock and cache/epoch
//! telemetry scrubbed) to a debugger built from scratch over a copy of the
//! same data. Across every traversal strategy, sequential and parallel
//! drivers, shared evaluation cache on and off, and under injected probe
//! faults. Any divergence means a layer served stale state.

use bench::{build_mutable_system, mutable_session_config, DataScale};
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::metrics::ProbeCounters;
use kwdebug::mutable::MutableDatabase;
use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;
use kwserve::protocol::encode_report;
use relengine::{FaultConfig, Value};

const MAX_LEVEL: usize = 3;

const STRATEGIES: [StrategyKind; 6] = [
    StrategyKind::BottomUp,
    StrategyKind::TopDown,
    StrategyKind::BottomUpWithReuse,
    StrategyKind::TopDownWithReuse,
    StrategyKind::ScoreBasedHeuristic,
    StrategyKind::BruteForce,
];

/// Queries whose outcomes the mutation script below perturbs, plus untouched
/// controls.
const QUERIES: [&str; 4] = ["Widom Trio", "DeRose VLDB", "SIGMOD XML", "Gray SIGMOD"];

/// Canonical bytes with every probe-work counter scrubbed: cache hits, SQL
/// counts and the epoch/invalidation gauges legitimately differ between a
/// warm incremental session and a cold fresh build — the *semantic* sections
/// (keyword tables, answers, non-answers, MPANs, unknown, prune stats) must
/// not.
fn canonical(mut report: DebugReport) -> Vec<u8> {
    for i in &mut report.interpretations {
        i.sql_queries = 0;
        i.probes = ProbeCounters::default();
    }
    encode_report(&report)
}

/// Three rounds of appends, link inserts, updates and deletes that move the
/// workload's keywords ("Trio", "VLDB", "XML", "histograms") between rows.
/// Returns the number of epochs consumed.
fn apply_mutation_script(m: &mut MutableDatabase) -> u64 {
    let publication = m.table_id("publication").expect("dblife schema");
    let writes = m.table_id("writes").expect("dblife schema");
    let before = m.epoch();
    for round in 0..3i64 {
        let base = 90_000 + round * 10;
        let ids = m
            .append_rows(
                publication,
                vec![
                    vec![Value::Int(base), Value::text(format!("Trio VLDB retrospective {round}"))],
                    vec![
                        Value::Int(base + 1),
                        Value::text(format!("Keyword search tutorial notes {round}")),
                    ],
                ],
            )
            .expect("append publications");
        // Widom (person id 1) writes the first new publication: "Widom Trio"
        // gains an answer path through the join. Gray (person id 7) gets a
        // fresh SIGMOD paper so "Gray SIGMOD" moves too.
        m.append_rows(
                publication,
            vec![vec![Value::Int(base + 2), Value::text(format!("SIGMOD reflections {round}"))]],
        )
        .expect("append gray publication");
        m.append_rows(
            writes,
            vec![vec![Value::Int(1), Value::Int(base)], vec![Value::Int(7), Value::Int(base + 2)]],
        )
        .expect("append writes links");
        // Move keywords in place: the update's old AND new text decide what
        // invalidates.
        m.update_row(
            publication,
            ids[1],
            vec![Value::Int(base + 1), Value::text(format!("XML histograms survey {round}"))],
        )
        .expect("update title");
        // Tombstone it again — the fresh rebuild sees the same tombstone
        // through the cloned database, so reports must still agree.
        m.delete_row(publication, ids[1]).expect("delete publication");
    }
    m.epoch() - before
}

fn session_config(strategy: StrategyKind, workers: usize, cache: bool) -> DebugConfig {
    DebugConfig {
        strategy,
        workers,
        eval_cache: cache,
        ..mutable_session_config(MAX_LEVEL)
    }
}

/// The tentpole invariant: incremental maintenance is invisible to reports.
#[test]
fn mutated_reports_match_fresh_rebuild_across_the_matrix() {
    let mut m = build_mutable_system(DataScale::Tiny, 7, MAX_LEVEL);
    m.share_eval_cache(None);
    // Low threshold so the script crosses it: both merge-on-read deltas and
    // a folded (compacted) base get exercised.
    m.set_compaction_threshold(8);

    // Warm the shared store at epoch 0, and keep the pre-mutation outcomes
    // to prove the script actually changes reports.
    let baseline: Vec<Vec<u8>> = {
        let s = m.session(session_config(StrategyKind::ScoreBasedHeuristic, 1, true)).unwrap();
        QUERIES.iter().map(|q| canonical(s.debug(q).unwrap())).collect()
    };

    let epochs = apply_mutation_script(&mut m);
    assert_eq!(epochs, 15, "3 rounds x 5 writes, one epoch each");
    assert!(m.index().compactions() > 0, "script crossed the compaction threshold");
    let store = m.shared_cache().unwrap().clone();
    assert_eq!(store.epoch(), m.epoch(), "write path re-pinned the store");
    assert!(store.invalidated() > 0, "keyword-bearing writes evicted warm entries");

    // One debugger rebuilt from scratch over a copy of the mutated data is
    // the ground truth (clone keeps rows and tombstones, rebuilds nothing
    // incrementally).
    let fresh =
        NonAnswerDebugger::new(m.database().clone(), mutable_session_config(MAX_LEVEL)).unwrap();

    let mut changed = 0;
    for (qi, q) in QUERIES.iter().enumerate() {
        let truth = canonical(fresh.debug(q).unwrap());
        if truth != baseline[qi] {
            changed += 1;
        }
        for strategy in STRATEGIES {
            for workers in [1usize, 4] {
                for cache in [false, true] {
                    let s = m.session(session_config(strategy, workers, cache)).unwrap();
                    let got = canonical(s.debug(q).unwrap());
                    assert_eq!(
                        got,
                        canonical(fresh.debug_with_strategy(q, strategy).unwrap()),
                        "{q} under {} workers={workers} cache={cache} \
                         diverged from the fresh rebuild",
                        strategy.name()
                    );
                    drop(s);
                }
            }
        }
    }
    assert!(changed >= 2, "mutation script changed only {changed} of {} queries", QUERIES.len());
}

/// Chaos-faulted probes must never leak a wrong verdict into any cache
/// layer: a faulted session's report still matches the fresh rebuild, and a
/// clean session over the *same shared store afterwards* does too.
#[test]
fn chaos_probes_never_poison_the_shared_store() {
    let mut m = build_mutable_system(DataScale::Tiny, 7, MAX_LEVEL);
    m.share_eval_cache(None);
    apply_mutation_script(&mut m);
    let fresh =
        NonAnswerDebugger::new(m.database().clone(), mutable_session_config(MAX_LEVEL)).unwrap();

    let chaos = FaultConfig {
        seed: 42,
        transient_per_mille: 200,
        permanent_per_mille: 0,
        latency_per_mille: 0,
        latency: std::time::Duration::ZERO,
        fail_first_transient: 0,
    };
    for q in QUERIES {
        let truth = canonical(fresh.debug(q).unwrap());
        let faulted = {
            let config = DebugConfig {
                chaos: Some(chaos),
                ..session_config(StrategyKind::BottomUpWithReuse, 1, true)
            };
            let s = m.session(config).unwrap();
            let report = s.debug(q).unwrap();
            assert!(report.probes().retries > 0 || report.probes().faults_injected == 0);
            canonical(report)
        };
        assert_eq!(faulted, truth, "{q}: transient faults changed the report");
        // The store the faulted session warmed serves a clean session next.
        let clean = m.session(session_config(StrategyKind::BottomUpWithReuse, 1, true)).unwrap();
        assert_eq!(canonical(clean.debug(q).unwrap()), truth, "{q}: store was poisoned");
    }
}
