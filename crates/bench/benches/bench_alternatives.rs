//! Bench for Figures 14/15: our approach vs Return Nothing vs Return
//! Everything.
//!
//! Measures end-to-end response cost per approach for a two-keyword and a
//! three-keyword query. Expected shape: ours ≤ RE everywhere; RN loses
//! ground on three-keyword queries (exponentially many subset submissions).

use bench::harness::{black_box, Bench};
use bench::{build_system, run_query, run_re, run_rn, DataScale};
use kwdebug::traversal::StrategyKind;

fn main() {
    let system = build_system(DataScale::Small, 7, 5);
    let mut b = Bench::from_args();
    for (qid, text) in [("Q4", "DeRose VLDB"), ("Q8", "Probabilistic Data Washington")] {
        b.run(&format!("fig14_alternatives_{qid}/ours_sbh"), 20, || {
            black_box(
                run_query(&system, text, StrategyKind::ScoreBasedHeuristic).expect("query runs"),
            )
            .sql_queries
        });
        b.run(&format!("fig14_alternatives_{qid}/return_nothing"), 20, || {
            black_box(run_rn(&system, text).expect("RN runs")).sql_queries
        });
        b.run(&format!("fig14_alternatives_{qid}/return_everything"), 20, || {
            black_box(run_re(&system, text).expect("RE runs")).sql_queries
        });
    }
}
