//! Criterion bench for Figures 14/15: our approach vs Return Nothing vs
//! Return Everything.
//!
//! Measures end-to-end response cost per approach for a two-keyword and a
//! three-keyword query. Expected shape: ours ≤ RE everywhere; RN loses
//! ground on three-keyword queries (exponentially many subset submissions).

use criterion::{criterion_group, criterion_main, Criterion};
use bench::{build_system, run_query, run_re, run_rn, DataScale};
use kwdebug::traversal::StrategyKind;
use std::hint::black_box;

fn bench_alternatives(c: &mut Criterion) {
    let system = build_system(DataScale::Small, 7, 5);
    for (qid, text) in [("Q4", "DeRose VLDB"), ("Q8", "Probabilistic Data Washington")] {
        let mut group = c.benchmark_group(format!("fig14_alternatives_{qid}"));
        group.sample_size(20);
        group.bench_function("ours_sbh", |b| {
            b.iter(|| {
                black_box(
                    run_query(&system, text, StrategyKind::ScoreBasedHeuristic)
                        .expect("query runs"),
                )
                .sql_queries
            })
        });
        group.bench_function("return_nothing", |b| {
            b.iter(|| black_box(run_rn(&system, text).expect("RN runs")).sql_queries)
        });
        group.bench_function("return_everything", |b| {
            b.iter(|| black_box(run_re(&system, text).expect("RE runs")).sql_queries)
        });
        group.finish();
    }
}

criterion_group!(benches, bench_alternatives);
criterion_main!(benches);
