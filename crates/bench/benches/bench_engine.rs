//! Bench for the relational-engine substrate.
//!
//! The traversal strategies' costs are dominated by aliveness checks; this
//! bench isolates the engine's emptiness test (`Executor::exists`) and
//! bounded enumeration on join trees of increasing depth over the DBLife
//! data, plus the inverted-index candidate seeding that keeps keyword nodes
//! from scanning.

use bench::harness::{black_box, Bench};
use datagen::{generate_dblife, DblifeConfig};
use relengine::{Executor, JoinTreePlan, PlanEdge, PlanNode, Predicate};
use textindex::InvertedIndex;

/// person —writes— publication chain plan, keyword on both ends.
fn chain_plan(db: &relengine::Database, idx: Option<&InvertedIndex>) -> JoinTreePlan {
    let person = db.table_id("person").expect("schema");
    let publication = db.table_id("publication").expect("schema");
    let writes = db.table_id("writes").expect("schema");
    let mut p_node = PlanNode::new(person, Predicate::any_text_contains("widom"));
    let mut pub_node = PlanNode::new(publication, Predicate::any_text_contains("trio"));
    if let Some(idx) = idx {
        p_node = p_node.with_candidates(idx.rows_containing(person, "widom").to_vec());
        pub_node = pub_node.with_candidates(idx.rows_containing(publication, "trio").to_vec());
    }
    JoinTreePlan::new(
        vec![p_node, PlanNode::free(writes), pub_node],
        vec![
            PlanEdge { a: 1, a_col: 0, b: 0, b_col: 0 },
            PlanEdge { a: 1, a_col: 1, b: 2, b_col: 0 },
        ],
    )
    .expect("static plan")
}

fn main() {
    let db = generate_dblife(&DblifeConfig::medium());
    let idx = InvertedIndex::build(&db);
    let mut b = Bench::from_args();

    for (name, with_idx) in [("with_posting_candidates", true), ("predicate_scan_only", false)] {
        let plan = chain_plan(&db, with_idx.then_some(&idx));
        b.run(&format!("engine_exists/{name}"), 10, || {
            let mut exec = Executor::new(&db);
            black_box(exec.exists(&plan).expect("plan valid"))
        });
    }

    let plan = chain_plan(&db, Some(&idx));
    b.run("engine_enumerate_limit10", 10, || {
        let mut exec = Executor::new(&db);
        black_box(exec.execute(&plan, 10).expect("plan valid")).len()
    });

    b.run("index_build_medium", 10, || black_box(InvertedIndex::build(&db)).term_count());
}
