//! Criterion bench for Figures 11/12 and Table 4: traversal strategies.
//!
//! Measures the full Phase-3 run (SQL executions included) for each of the
//! five strategies on a light query (Q1) and the heavy one (Q3). Expected
//! ordering mirrors the paper: with-reuse variants beat their counterparts;
//! SBH is never far from the best.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::{build_system, run_query, DataScale};
use kwdebug::traversal::StrategyKind;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let system = build_system(DataScale::Small, 7, 5);
    for (qid, text) in [("Q1", "Widom Trio"), ("Q3", "Agrawal Chaudhuri Das")] {
        let mut group = c.benchmark_group(format!("fig11_traversal_{qid}"));
        group.sample_size(20);
        for kind in StrategyKind::ALL {
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
                b.iter(|| black_box(run_query(&system, text, k).expect("query runs")).sql_queries)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
