//! Bench for Figures 11/12 and Table 4: traversal strategies.
//!
//! Measures the full Phase-3 run (SQL executions included) for each of the
//! five strategies on a light query (Q1) and the heavy one (Q3). Expected
//! ordering mirrors the paper: with-reuse variants beat their counterparts;
//! SBH is never far from the best.

use bench::harness::{black_box, Bench};
use bench::{build_system, run_query, DataScale};
use kwdebug::traversal::StrategyKind;

fn main() {
    let system = build_system(DataScale::Small, 7, 5);
    let mut b = Bench::from_args();
    for (qid, text) in [("Q1", "Widom Trio"), ("Q3", "Agrawal Chaudhuri Das")] {
        for kind in StrategyKind::ALL {
            b.run(&format!("fig11_traversal_{qid}/{}", kind.name()), 20, || {
                black_box(run_query(&system, text, kind).expect("query runs")).sql_queries
            });
        }
    }
}
