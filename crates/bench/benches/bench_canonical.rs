//! Bench for Algorithm 2: canonical labeling.
//!
//! Canonical labels are computed for every generated network during Phase 0
//! (millions at level 7), so per-call cost directly bounds offline build
//! time. Benchmarked on path- and star-shaped networks at the sizes the
//! lattice actually produces (2-8 vertices).

use bench::harness::{black_box, Bench};
use kwdebug::canonical::canonical_label;
use kwdebug::jnts::{Jnts, TupleSet};
use kwdebug::schema_graph::Incidence;

fn path(n: usize) -> Jnts {
    let mut j = Jnts::single(TupleSet::new(0, 1));
    for i in 1..n {
        j = j.extend(
            i - 1,
            Incidence { fk: i % 3, other: i % 5, local_is_from: i % 2 == 0 },
            0,
        );
    }
    j
}

fn star(n: usize) -> Jnts {
    let mut j = Jnts::single(TupleSet::new(0, 0));
    for i in 1..n {
        j = j.extend(0, Incidence { fk: i % 3, other: i % 5, local_is_from: true }, 0);
    }
    j
}

fn main() {
    let mut b = Bench::from_args();
    for n in [2usize, 4, 6, 8] {
        let p = path(n);
        b.run(&format!("alg2_canonical_label/path/{n}"), 10, || {
            black_box(canonical_label(&p)).len()
        });
        let s = star(n);
        b.run(&format!("alg2_canonical_label/star/{n}"), 10, || {
            black_box(canonical_label(&s)).len()
        });
    }
}
