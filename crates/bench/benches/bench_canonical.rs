//! Criterion bench for Algorithm 2: canonical labeling.
//!
//! Canonical labels are computed for every generated network during Phase 0
//! (millions at level 7), so per-call cost directly bounds offline build
//! time. Benchmarked on path- and star-shaped networks at the sizes the
//! lattice actually produces (2-8 vertices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdebug::canonical::canonical_label;
use kwdebug::jnts::{Jnts, TupleSet};
use kwdebug::schema_graph::Incidence;
use std::hint::black_box;

fn path(n: usize) -> Jnts {
    let mut j = Jnts::single(TupleSet::new(0, 1));
    for i in 1..n {
        j = j.extend(
            i - 1,
            Incidence { fk: i % 3, other: i % 5, local_is_from: i % 2 == 0 },
            0,
        );
    }
    j
}

fn star(n: usize) -> Jnts {
    let mut j = Jnts::single(TupleSet::new(0, 0));
    for i in 1..n {
        j = j.extend(0, Incidence { fk: i % 3, other: i % 5, local_is_from: true }, 0);
    }
    j
}

fn bench_canonical(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_canonical_label");
    for n in [2usize, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::new("path", n), &path(n), |b, j| {
            b.iter(|| black_box(canonical_label(j)).len())
        });
        group.bench_with_input(BenchmarkId::new("star", n), &star(n), |b, j| {
            b.iter(|| black_box(canonical_label(j)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_canonical);
criterion_main!(benches);
