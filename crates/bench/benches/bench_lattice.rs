//! Bench for Figure 9: offline lattice generation.
//!
//! Measures `Lattice::build` over the DBLife schema at increasing `maxJoins`.
//! The paper's observation — node counts (and thus build time) grow
//! exponentially with the level, yet stay an acceptable one-time offline
//! cost — shows up directly in the per-level timings.

use bench::harness::{black_box, Bench};
use datagen::{generate_dblife, DblifeConfig};
use kwdebug::lattice::Lattice;
use kwdebug::SchemaGraph;

fn main() {
    let db = generate_dblife(&DblifeConfig::tiny());
    let graph = SchemaGraph::new(&db);
    let mut b = Bench::from_args();
    for max_joins in [1usize, 2, 3, 4] {
        b.run(&format!("fig9_lattice_build/levels_{}", max_joins + 1), 10, || {
            black_box(Lattice::build(&db, &graph, max_joins)).node_count()
        });
    }
}
