//! Criterion bench for Figure 9: offline lattice generation.
//!
//! Measures `Lattice::build` over the DBLife schema at increasing `maxJoins`.
//! The paper's observation — node counts (and thus build time) grow
//! exponentially with the level, yet stay an acceptable one-time offline
//! cost — shows up directly in the per-level timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate_dblife, DblifeConfig};
use kwdebug::lattice::Lattice;
use kwdebug::SchemaGraph;
use std::hint::black_box;

fn bench_lattice_build(c: &mut Criterion) {
    let db = generate_dblife(&DblifeConfig::tiny());
    let graph = SchemaGraph::new(&db);
    let mut group = c.benchmark_group("fig9_lattice_build");
    group.sample_size(10);
    for max_joins in [1usize, 2, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("levels_{}", max_joins + 1)),
            &max_joins,
            |b, &mj| b.iter(|| black_box(Lattice::build(&db, &graph, mj)).node_count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lattice_build);
criterion_main!(benches);
