//! Criterion bench for §3.3 / Figure 10: online Phases 1 and 2.
//!
//! Measures (a) keyword-to-schema mapping through the inverted index and
//! (b) keyword pruning plus MTN discovery (`PrunedLattice::build`) for
//! representative workload queries. The paper reports 7-66 ms mapping and
//! up-to-23 ms MTN finding on 2009-era hardware; both are microseconds here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::{build_system, DataScale};
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::prune::PrunedLattice;
use std::hint::black_box;

fn bench_phase12(c: &mut Criterion) {
    let system = build_system(DataScale::Small, 7, 5);

    let mut group = c.benchmark_group("fig10_phase1_mapping");
    for text in ["Widom Trio", "Agrawal Chaudhuri Das", "Probabilistic Data Washington"] {
        let query = KeywordQuery::parse(text).expect("workload query parses");
        group.bench_with_input(BenchmarkId::from_parameter(text), &query, |b, q| {
            b.iter(|| black_box(map_keywords(q, system.index())).interpretations.len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig10_phase2_prune_and_mtns");
    group.sample_size(20);
    for text in ["Widom Trio", "Agrawal Chaudhuri Das"] {
        let query = KeywordQuery::parse(text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        let interp = mapping.interpretations.first().expect("has interpretation").clone();
        group.bench_with_input(BenchmarkId::from_parameter(text), &interp, |b, i| {
            b.iter(|| black_box(PrunedLattice::build(system.lattice(), i)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase12);
criterion_main!(benches);
