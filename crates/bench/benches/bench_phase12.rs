//! Bench for §3.3 / Figure 10: online Phases 1 and 2.
//!
//! Measures (a) keyword-to-schema mapping through the inverted index and
//! (b) keyword pruning plus MTN discovery (`PrunedLattice::build`) for
//! representative workload queries. The paper reports 7-66 ms mapping and
//! up-to-23 ms MTN finding on 2009-era hardware; both are microseconds here.

use bench::harness::{black_box, Bench};
use bench::{build_system, DataScale};
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::prune::PrunedLattice;

fn main() {
    let system = build_system(DataScale::Small, 7, 5);
    let mut b = Bench::from_args();

    for text in ["Widom Trio", "Agrawal Chaudhuri Das", "Probabilistic Data Washington"] {
        let query = KeywordQuery::parse(text).expect("workload query parses");
        b.run(&format!("fig10_phase1_mapping/{text}"), 10, || {
            black_box(map_keywords(&query, system.index())).interpretations.len()
        });
    }

    for text in ["Widom Trio", "Agrawal Chaudhuri Das"] {
        let query = KeywordQuery::parse(text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        let interp = mapping.interpretations.first().expect("has interpretation").clone();
        b.run(&format!("fig10_phase2_prune_and_mtns/{text}"), 20, || {
            black_box(PrunedLattice::build(system.lattice(), &interp)).len()
        });
    }
}
