//! Hand-rolled micro-benchmark harness (criterion stand-in).
//!
//! The build environment has no registry access, so the `[[bench]]` targets
//! cannot link criterion. This module provides the small subset the
//! experiment benches need: named samples, automatic per-sample iteration
//! calibration, and a min/median/mean report. Timings come from
//! [`std::time::Instant`], the same monotonic clock the metrics layer uses.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! use bench::harness::{black_box, Bench};
//! let mut b = Bench::from_args();
//! b.run("group/label", 10, || black_box(2 + 2));
//! ```
//!
//! `cargo bench -p bench` passes any trailing non-flag argument through as a
//! substring filter, mirroring criterion's CLI.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Minimum measured wall time per sample before trusting the reading.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// A bench session: holds the CLI filter and prints one line per benchmark.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Builds a session from `std::env::args`, skipping the flags cargo
    /// forwards (`--bench`, `--exact`, ...). The first bare argument, if
    /// any, becomes a substring filter on benchmark labels.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench { filter }
    }

    /// Runs one benchmark: warms up, calibrates the per-sample iteration
    /// count so a sample lasts at least ~5 ms, then records `samples`
    /// samples and prints `min / median / mean` per iteration.
    pub fn run<T, F: FnMut() -> T>(&mut self, label: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let samples = samples.max(1);

        // Warm-up and calibration: double the iteration count until one
        // sample exceeds the target time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "{label:<44} {:>10} min {:>10} median {:>10} mean  ({samples} samples x {iters} iters)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

/// Writes newline-delimited stable-JSON records to
/// `results/BENCH_<experiment>.json` and echoes each line to stdout
/// (prefixed `BENCH_JSON `), so a human scanning the console and a script
/// scraping the results directory see the same records. This is the one
/// BENCH_*.json writer in the repo: the library benches go through
/// [`crate::emit_metrics`] and the serving load generator (`exp_serve`)
/// calls it directly, so every results file has the same shape regardless
/// of which layer produced it. Callers are responsible for sorted keys
/// inside each record (the [`kwdebug::metrics::MetricsSnapshot::to_json`]
/// discipline).
pub fn write_records(experiment: &str, records: &[String]) {
    use std::io::Write as _;
    let mut lines = String::new();
    for json in records {
        println!("BENCH_JSON {json}");
        lines.push_str(json);
        lines.push('\n');
    }
    let dir = std::path::Path::new("results");
    let path = dir.join(format!("BENCH_{experiment}.json"));
    let write = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::File::create(&path))
        .and_then(|mut f| f.write_all(lines.as_bytes()));
    match write {
        Ok(()) => eprintln!("wrote {} metrics records to {}", records.len(), path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Renders a duration with a unit suited to its magnitude.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_pick_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn run_executes_closure() {
        let mut b = Bench { filter: None };
        let mut calls = 0u64;
        b.run("test/trivial", 1, || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut b = Bench { filter: Some("other".to_owned()) };
        let mut calls = 0u64;
        b.run("test/trivial", 1, || calls += 1);
        assert_eq!(calls, 0);
    }
}
