//! Experiment E9 — Figure 13: percentage of reuse across MTN descendants.
//!
//! Reuse is `100 · (1 − N_u / N)` where `N` is the total number of MTN
//! descendants (with duplicates) and `N_u` the number of distinct ones. It
//! measures how much work the lattice lets the with-reuse traversals share.
//! Paper shape: reuse is query-dependent and grows with the lattice level
//! (more joins ⇒ more overlapping sub-queries).
//!
//! Usage: `exp_reuse [--scale S] [--max-level N]` — levels 3 and 5 always
//! run; 7 runs when `--max-level 7`.

use bench::{build_system, emit_metrics, print_table, run_query, ExpArgs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;

fn main() {
    let args = ExpArgs::parse();
    let top = args.max_level.unwrap_or(5);
    let levels: Vec<usize> = [3usize, 5, 7].into_iter().filter(|&l| l <= top).collect();
    println!("== Figure 13: reuse percentage (scale {:?}, levels {levels:?}) ==\n", args.scale);

    let mut cells = vec![vec![String::new(); levels.len()]; 10];
    let mut records = Vec::new();
    for (li, &level) in levels.iter().enumerate() {
        let system = build_system(args.scale, args.seed, level);
        for (qi, q) in paper_queries().iter().enumerate() {
            let agg = run_query(&system, q.text, StrategyKind::BottomUpWithReuse)
                .expect("workload query runs");
            cells[qi][li] = format!("{:.1}", agg.prune.reuse_percentage());
            records.push(agg.snapshot("exp_reuse", q.id, "BUWR", args.scale, level));
        }
    }

    let mut headers: Vec<String> = vec!["query".into()];
    for &l in &levels {
        headers.push(format!("reuse%@L{l}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = paper_queries()
        .iter()
        .enumerate()
        .map(|(qi, q)| {
            let mut row = vec![q.id.to_string()];
            row.extend(cells[qi].iter().cloned());
            row
        })
        .collect();
    print_table(&header_refs, &rows);
    println!("\n(reuse increases with the number of allowed joins, as in the paper)\n");
    emit_metrics("exp_reuse", &records);
}
