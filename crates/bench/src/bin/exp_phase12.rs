//! Experiment E3/E4 — §3.3 and Figure 10: keyword mapping and pruning.
//!
//! Per workload query: keyword-to-schema mapping time, lattice nodes
//! retained after keyword pruning (and the pruning percentage), number of
//! MTNs, their total descendants and unique descendants. Paper shape:
//! mapping is milliseconds; pruning removes the overwhelming majority of
//! lattice nodes (98% on average at level 5); queries with high descendant
//! overlap (few unique descendants) are the ones reuse helps most.
//!
//! Usage: `exp_phase12 [--scale S] [--max-level N]` (default N=5).

use bench::{build_system, emit_metrics, print_table, run_query, ExpArgs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== §3.3 / Figure 10: phases 1-2 (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);
    let lattice_nodes = system.lattice().node_count();
    println!("offline lattice: {lattice_nodes} nodes\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut prune_pct_sum = 0.0;
    for q in paper_queries() {
        let agg = run_query(&system, q.text, StrategyKind::BottomUpWithReuse)
            .expect("workload query runs");
        let mut rec = agg.snapshot("exp_phase12", q.id, "BUWR", args.scale, max_level);
        rec.levels = system.lattice().stats().to_vec();
        records.push(rec);
        let prune_pct = 100.0
            * (1.0 - agg.prune.retained_phase1 as f64 / (lattice_nodes * agg.interpretations.max(1)) as f64);
        prune_pct_sum += prune_pct;
        rows.push(vec![
            q.id.to_string(),
            agg.interpretations.to_string(),
            bench::ms(agg.mapping_time),
            agg.prune.retained_phase1.to_string(),
            format!("{prune_pct:.1}"),
            agg.prune.mtn_count.to_string(),
            agg.prune.mtn_descendants_total.to_string(),
            agg.prune.mtn_descendants_unique.to_string(),
        ]);
    }
    print_table(
        &["query", "interp", "map_ms", "retained", "pruned%", "MTNs", "desc", "uniq_desc"],
        &rows,
    );
    println!("\naverage pruning: {:.1}% of lattice nodes removed\n", prune_pct_sum / 10.0);
    emit_metrics("exp_phase12", &records);
}
