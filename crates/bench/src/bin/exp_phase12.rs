//! Experiment E3/E4 — §3.3 and Figure 10: keyword mapping and pruning.
//!
//! Per workload query: keyword-to-schema mapping time, lattice nodes
//! retained after keyword pruning (and the pruning percentage), number of
//! MTNs, their total descendants and unique descendants. Paper shape:
//! mapping is milliseconds; pruning removes the overwhelming majority of
//! lattice nodes (98% on average at level 5); queries with high descendant
//! overlap (few unique descendants) are the ones reuse helps most.
//!
//! With `--throughput N` the binary additionally runs the sustained
//! multi-query mode of experiment E14: N workload queries back to back over
//! the one shared lattice, reporting queries/sec, per-phase µs per query and
//! heap allocations per query (counted by a wrapping global allocator). This
//! is the before/after yardstick for the compact lattice substrate
//! (DESIGN.md §9).
//!
//! Usage: `exp_phase12 [--scale S] [--max-level N] [--throughput N]`
//! (default max level 5).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::{build_system, emit_metrics, print_table, run_query, ExpArgs};
use datagen::paper_queries;
use kwdebug::metrics::{MetricsSnapshot, PhaseTiming};
use kwdebug::traversal::StrategyKind;

/// Wraps the system allocator to count heap allocations, so the throughput
/// mode can report allocations per query without external tooling.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== §3.3 / Figure 10: phases 1-2 (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);
    let lattice_nodes = system.lattice().node_count();
    println!("offline lattice: {lattice_nodes} nodes\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut prune_pct_sum = 0.0;
    for q in paper_queries() {
        let agg = run_query(&system, q.text, StrategyKind::BottomUpWithReuse)
            .expect("workload query runs");
        let mut rec = agg.snapshot("exp_phase12", q.id, "BUWR", args.scale, max_level);
        rec.levels = system.lattice().stats().to_vec();
        rec.lattice_bytes = system.lattice().memory_footprint().total_bytes() as u64;
        records.push(rec);
        let prune_pct = 100.0
            * (1.0 - agg.prune.retained_phase1 as f64 / (lattice_nodes * agg.interpretations.max(1)) as f64);
        prune_pct_sum += prune_pct;
        rows.push(vec![
            q.id.to_string(),
            agg.interpretations.to_string(),
            bench::ms(agg.mapping_time),
            agg.prune.retained_phase1.to_string(),
            format!("{prune_pct:.1}"),
            agg.prune.mtn_count.to_string(),
            agg.prune.mtn_descendants_total.to_string(),
            agg.prune.mtn_descendants_unique.to_string(),
        ]);
    }
    print_table(
        &["query", "interp", "map_ms", "retained", "pruned%", "MTNs", "desc", "uniq_desc"],
        &rows,
    );
    println!("\naverage pruning: {:.1}% of lattice nodes removed\n", prune_pct_sum / 10.0);

    if let Some(n) = args.throughput {
        records.push(run_throughput(&system, n, args, max_level));
    }
    emit_metrics("exp_phase12", &records);
}

/// E14: sustained Phase 1–2 throughput over the shared lattice.
fn run_throughput(
    system: &kwdebug::debugger::NonAnswerDebugger,
    n: usize,
    args: ExpArgs,
    max_level: usize,
) -> MetricsSnapshot {
    println!("== E14: sustained phase 1-2 throughput ({n} queries) ==\n");
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let rep = bench::run_phase12_throughput(system, n);
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let allocs_per_query = allocs / n.max(1) as u64;
    let per_query_us = rep.wall.as_secs_f64() * 1e6 / rep.queries.max(1) as f64;
    let map_us = rep.mapping.as_secs_f64() * 1e6 / rep.queries.max(1) as f64;
    let prune_us = rep.pruning.as_secs_f64() * 1e6 / rep.queries.max(1) as f64;
    print_table(
        &["queries", "interp", "q/s", "query_us", "map_us", "prune12_us", "allocs/q"],
        &[vec![
            rep.queries.to_string(),
            rep.interpretations.to_string(),
            format!("{:.0}", rep.queries_per_sec()),
            format!("{per_query_us:.1}"),
            format!("{map_us:.1}"),
            format!("{prune_us:.1}"),
            allocs_per_query.to_string(),
        ]],
    );
    println!();
    let mut rec = MetricsSnapshot {
        experiment: "exp_phase12".to_owned(),
        query: "THROUGHPUT".to_owned(),
        strategy: "NONE".to_owned(),
        variant: format!(
            "throughput={n};substrate={};allocs_per_query={allocs_per_query}",
            substrate_name()
        ),
        scale: args.scale.name().to_owned(),
        max_level: max_level as u64,
        interpretations: rep.interpretations as u64,
        lattice_bytes: system.lattice().memory_footprint().total_bytes() as u64,
        probes: Default::default(),
        phases: PhaseTiming {
            mapping: rep.mapping,
            pruning: rep.pruning,
            total: rep.wall,
            ..PhaseTiming::default()
        },
        prune: Some(rep.prune.clone()),
        levels: Vec::new(),
    };
    rec.probes.phase1_nodes_touched = rep.phase1_nodes_touched;
    rec.probes.workspace_reuses = rep.workspace_reuses;
    rec
}

/// Label of the Phase 1–2 substrate in effect, recorded in the bench variant
/// so before/after rows are distinguishable in `results/`.
fn substrate_name() -> &'static str {
    kwdebug::prune::SUBSTRATE
}
