//! Experiment E5/E6 — Figures 11 and 12: traversal strategy comparison.
//!
//! Per workload query and per strategy (BU, BUWR, TD, TDWR, SBH): the number
//! of SQL queries executed and the time spent executing them. Paper shape:
//! the with-reuse variants beat their plain counterparts (dramatically for
//! high-overlap queries like Q3 and Q8); SBH is competitive everywhere.
//!
//! Usage: `exp_traversal [--scale S] [--max-level N]` (default N=5).

use bench::{build_system, emit_metrics, print_table, run_query, ExpArgs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== Figures 11/12: SQL queries and time per strategy (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);

    let mut count_rows = Vec::new();
    let mut time_rows = Vec::new();
    let mut records = Vec::new();
    for q in paper_queries() {
        let mut counts = vec![q.id.to_string()];
        let mut times = vec![q.id.to_string()];
        for kind in StrategyKind::ALL {
            let agg = run_query(&system, q.text, kind).expect("workload query runs");
            counts.push(agg.sql_queries.to_string());
            times.push(bench::ms(agg.sql_time));
            records.push(agg.snapshot(
                "exp_traversal",
                q.id,
                &kind.to_string(),
                args.scale,
                max_level,
            ));
        }
        count_rows.push(counts);
        time_rows.push(times);
    }

    let headers = ["query", "BU", "BUWR", "TD", "TDWR", "SBH"];
    println!("Figure 11 — number of SQL queries executed:");
    print_table(&headers, &count_rows);
    println!("\nFigure 12 — SQL execution time (ms):");
    print_table(&headers, &time_rows);
    println!();
    emit_metrics("exp_traversal", &records);
}
