//! Experiment E16 — serving-layer load generator (`kwserve` under
//! concurrency).
//!
//! Starts a real [`kwserve::Server`] on a loopback port over one shared
//! substrate, then sweeps closed-loop session counts: for each count `S`,
//! `S` client threads connect as tenants, each runs a fixed number of
//! Table 2 workload queries back to back over its own session, and every
//! request's client-side wall-clock is recorded. Reported per sweep point:
//! requests, wall time, throughput (QPS) and the latency distribution
//! (p50 / p99 / mean / max) — the serving numbers the library benches
//! cannot produce, because they include framing, socket hops and the
//! per-session state split.
//!
//! With `--overload` (E17's overload protocol) two extra points run through
//! a bounded-admission server: an *uncontended* point (`sessions ==
//! workers`) and an *overload* point (`sessions == 6 × workers` against an
//! in-flight gate of `2 × workers`). Shed clients honor the server's
//! `retry_after_ms` hint and reconnect; rows record shed counts, shed rate,
//! served-request p50/p99 (server-observed service time, so the comparison
//! isolates how the server treats admitted work rather than client-thread
//! scheduling delay) and **goodput** (served QPS). The acceptance
//! check is shed-not-collapse: goodput stays flat and served p99 under
//! overload stays within 2× the uncontended p99, because excess load is
//! refused in O(1) at accept instead of queueing behind busy workers.
//!
//! With `--warm` (E18's warm-multi-tenant protocol) three extra points run
//! 8 tenants with *overlapping* keyword workloads — every tenant walks the
//! same Table 2 queries, phase-shifted so each query is cold exactly once
//! and warm for every later tenant: once without a shared cache (each
//! request pays full probing), once with [`kwserve::ServeConfig::
//! shared_cache`] enabled (the process-wide store turns co-tenant repeats
//! into selection hits and dead shortcuts), and once with a deliberately
//! tiny byte budget (eviction pressure: the run must keep
//! `cache_bytes <= budget` while the eviction counter climbs). Rows record
//! aggregate QPS, server-counted probes per served request, and the
//! shared-cache counters; the binary asserts a warm canary report is
//! identical (modulo executed-query counts and timings) across all three
//! points — sharing the cache must never change answers.
//!
//! With `--batch` (E20's cross-session batching protocol) four extra points
//! run through a [`kwserve::ServeConfig::batching`] server with the shared
//! cache *off* (cold, so batching is the only probe-saving mechanism): 8
//! tenants walk the same Table 2 queries aligned per request, so concurrent
//! sessions dispatch near-identical probe waves — once with batching off
//! (every tenant executes its full wave) and once with the wave exchange on
//! (duplicate probes coalesce into a single execution, verdicts fan back to
//! every subscriber). Rows record probes per served request, merged waves,
//! the coalesce ratio and server-observed p50/p99. Two solo points (one
//! tenant, batching on/off) pin the bypass: uncontended p50 must stay
//! within 10% of batching-off. The acceptance check is `>= 2.0x` fewer
//! probe executions per request with batching on at QPS parity.
//!
//! Records go to `results/BENCH_exp_serve.json` via the shared writer
//! ([`bench::harness::write_records`]), one stable-JSON line per sweep
//! point. See `EXPERIMENTS.md` §E16/§E17/§E18/§E20 and `SERVING.md` for
//! interpretation.
//!
//! Usage: `exp_serve [--scale S] [--max-level N] [--seed N]
//! [--sessions 2,8,64] [--queries N] [--workers N] [--overload] [--warm]
//! [--batch]`
//! (workers defaults to the sweep point's session count, so every session
//! is served concurrently rather than queued in the accept backlog).

use std::sync::Barrier;
use std::time::{Duration, Instant};

use kwdebug::BatchConfig;

use bench::harness::write_records;
use bench::{build_system, print_table, DataScale};
use kwserve::{
    ClientError, DebugClient, ErrorCode, ServeConfig, Server, SharedCacheConfig, TenantPolicy,
    TenantRegistry,
};

struct Args {
    scale: DataScale,
    max_level: usize,
    seed: u64,
    sessions: Vec<usize>,
    queries: usize,
    workers: Option<usize>,
    overload: bool,
    warm: bool,
    batch: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: DataScale::Tiny,
        max_level: 3,
        seed: 7,
        sessions: vec![2, 8, 64],
        queries: 8,
        workers: None,
        overload: false,
        warm: false,
        batch: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                out.scale = DataScale::parse(value(i)).unwrap_or_else(|| {
                    eprintln!("unknown scale `{}` (tiny|small|medium|paper)", args[i + 1]);
                    std::process::exit(2);
                });
            }
            "--max-level" => out.max_level = expect_num(value(i), "--max-level"),
            "--seed" => out.seed = expect_num(value(i), "--seed"),
            "--queries" => out.queries = expect_num(value(i), "--queries"),
            "--workers" => out.workers = Some(expect_num(value(i), "--workers")),
            "--sessions" => {
                out.sessions = value(i)
                    .split(',')
                    .map(|s| expect_num(s, "--sessions"))
                    .collect();
            }
            "--overload" => {
                out.overload = true;
                i += 1;
                continue;
            }
            "--warm" => {
                out.warm = true;
                i += 1;
                continue;
            }
            "--batch" => {
                out.batch = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --scale tiny|small|medium|paper  --max-level N  --seed N  \
                     --sessions N,N,...  --queries N  --workers N  --overload  --warm  --batch"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    out
}

fn expect_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{s}`");
        std::process::exit(2);
    })
}

/// One sweep point's aggregated serving numbers.
struct SweepPoint {
    sessions: usize,
    workers: usize,
    queries: usize,
    degraded: usize,
    wall_ms: f64,
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Runs one closed-loop sweep point: a fresh server, `sessions` concurrent
/// client threads, `queries` requests each.
fn run_point(
    system: &kwdebug::debugger::NonAnswerDebugger,
    sessions: usize,
    queries: usize,
    workers: usize,
) -> SweepPoint {
    let config = ServeConfig { workers, debug: *system.config(), ..ServeConfig::default() };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .expect("server binds on loopback");
    let addr = server.addr();
    let workload = datagen::paper_queries();

    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(sessions * queries);
    let mut degraded = 0usize;
    std::thread::scope(|s| {
        let workload = &workload;
        let handles: Vec<_> = (0..sessions)
            .map(|si| {
                s.spawn(move || {
                    let tenant = format!("tenant{}", si % 8);
                    let mut client =
                        DebugClient::connect(addr, &tenant).expect("session admitted");
                    let mut latencies = Vec::with_capacity(queries);
                    let mut degraded = 0usize;
                    for qi in 0..queries {
                        let q = &workload[(si + qi) % workload.len()];
                        let t = Instant::now();
                        let wire = client.debug(q.text).expect("query served");
                        latencies.push(t.elapsed().as_nanos() as u64);
                        degraded += wire.degraded as usize;
                    }
                    client.bye().expect("clean goodbye");
                    (latencies, degraded)
                })
            })
            .collect();
        for h in handles {
            let (lat, deg) = h.join().expect("session thread");
            all_latencies.extend(lat);
            degraded += deg;
        }
    });
    let wall = t0.elapsed();
    server.shutdown();

    all_latencies.sort_unstable();
    let n = all_latencies.len();
    let mean = if n == 0 { 0 } else { all_latencies.iter().sum::<u64>() / n as u64 };
    SweepPoint {
        sessions,
        workers,
        queries: n,
        degraded,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: if wall.is_zero() { 0.0 } else { n as f64 / wall.as_secs_f64() },
        p50_ns: percentile(&all_latencies, 50),
        p99_ns: percentile(&all_latencies, 99),
        mean_ns: mean,
        max_ns: all_latencies.last().copied().unwrap_or(0),
    }
}

/// One overload-protocol point's aggregated numbers (served requests only;
/// shed connections retry until admitted).
struct OverloadPoint {
    sessions: usize,
    workers: usize,
    served: usize,
    degraded: usize,
    sheds: u64,
    shed_rate: f64,
    wall_ms: f64,
    goodput_qps: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Runs one point of the overload protocol: a bounded-admission server
/// (`max_inflight == 2 × workers`), `sessions` closed-loop clients that
/// honor `Overloaded` retry hints, `queries` requests per admitted session.
fn run_overload_point(
    system: &kwdebug::debugger::NonAnswerDebugger,
    sessions: usize,
    queries: usize,
    workers: usize,
) -> OverloadPoint {
    let config = ServeConfig {
        workers,
        max_inflight: workers * 2,
        poll_interval: Duration::from_millis(20),
        // Small enough that retrying shed clients keep the bounded queue
        // primed (a session on the tiny scale lasts well under a
        // millisecond) — the worker must never idle while load exists, or
        // goodput dips below capacity between admission waves.
        retry_after: Duration::from_millis(1),
        debug: *system.config(),
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .expect("server binds on loopback");
    let addr = server.addr();
    let workload = datagen::paper_queries();

    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(sessions * queries);
    let mut degraded = 0usize;
    std::thread::scope(|s| {
        let workload = &workload;
        let handles: Vec<_> = (0..sessions)
            .map(|si| {
                s.spawn(move || {
                    let tenant = format!("tenant{}", si % 8);
                    let mut latencies = Vec::with_capacity(queries);
                    let mut degraded = 0usize;
                    // Admission loop: a shed is an O(1) refusal with a retry
                    // hint, so back off exactly as told and try again.
                    let mut client = None;
                    for _ in 0..100_000 {
                        match DebugClient::connect(addr, &tenant) {
                            Ok(c) => {
                                client = Some(c);
                                break;
                            }
                            Err(ClientError::Server {
                                code: ErrorCode::Overloaded,
                                retry_after_ms,
                                ..
                            }) => {
                                std::thread::sleep(Duration::from_millis(u64::from(
                                    retry_after_ms.max(1),
                                )));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    let Some(mut client) = client else { return (latencies, degraded) };
                    for qi in 0..queries {
                        let q = &workload[(si + qi) % workload.len()];
                        let wire = client.debug(q.text).expect("query served");
                        // Server-observed service time: the shed-not-collapse
                        // criterion is about how the *server* treats admitted
                        // requests; client-side clocks on a loaded box fold
                        // client-thread scheduling delay into the tail.
                        latencies.push(wire.server_ns);
                        degraded += wire.degraded as usize;
                    }
                    let _ = client.bye();
                    (latencies, degraded)
                })
            })
            .collect();
        for h in handles {
            let (lat, deg) = h.join().expect("session thread");
            all_latencies.extend(lat);
            degraded += deg;
        }
    });
    let wall = t0.elapsed();
    let metrics = server.shutdown();
    let sheds = metrics.sessions_shed.into_inner();
    let accepted = metrics.connections_accepted.into_inner();

    all_latencies.sort_unstable();
    let n = all_latencies.len();
    OverloadPoint {
        sessions,
        workers,
        served: n,
        degraded,
        sheds,
        shed_rate: if accepted == 0 { 0.0 } else { sheds as f64 / accepted as f64 },
        wall_ms: wall.as_secs_f64() * 1e3,
        goodput_qps: if wall.is_zero() { 0.0 } else { n as f64 / wall.as_secs_f64() },
        p50_ns: percentile(&all_latencies, 50),
        p99_ns: percentile(&all_latencies, 99),
    }
}

/// One warm-multi-tenant point's aggregated numbers (E18).
struct WarmPoint {
    variant: &'static str,
    tenants: usize,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    probes_executed: u64,
    probes_per_request: f64,
    cache_bytes: u64,
    cache_evictions: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Scrubbed warm-state canary report (executed-query counts and wall
    /// clocks blanked), for the cross-point identity assertion.
    canary: String,
}

/// Blanks the per-interpretation query count and wall clock of rendered
/// report lines — `(12 SQL queries, 1.3ms)` → `(q SQL queries, t)` — the
/// same scrub the cache-equivalence suites use: dead shortcuts legitimately
/// shrink the executed-query count, everything else must match.
fn scrub(s: &str) -> String {
    s.lines()
        .map(|l| match l.find(" SQL queries, ") {
            Some(i) => match l[..i].rfind('(') {
                Some(j) => format!("{}(q SQL queries, t)", &l[..j]),
                None => l.to_string(),
            },
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs one E18 point: `tenants` closed-loop clients (one per tenant) walk
/// the same workload phase-shifted by their index, so every query is cold
/// exactly once and a co-tenant repeat everywhere else. After the load
/// phase, a canary client replays the first workload query against the
/// warm server and the scrubbed report is kept for cross-point comparison.
fn run_warm_point(
    system: &kwdebug::debugger::NonAnswerDebugger,
    tenants: usize,
    queries: usize,
    workers: usize,
    shared: Option<SharedCacheConfig>,
    variant: &'static str,
) -> WarmPoint {
    let config = ServeConfig {
        workers,
        // E18 measures cache behavior, not admission: every tenant (plus the
        // canary) must be resident at once, so the in-flight gate stays open.
        max_inflight: tenants + 1,
        debug: *system.config(),
        shared_cache: shared,
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .expect("server binds on loopback");
    let addr = server.addr();
    let workload = datagen::paper_queries();

    let t0 = Instant::now();
    let mut requests = 0usize;
    std::thread::scope(|s| {
        let workload = &workload;
        let handles: Vec<_> = (0..tenants)
            .map(|ti| {
                s.spawn(move || {
                    let tenant = format!("tenant{ti}");
                    let mut client =
                        DebugClient::connect(addr, &tenant).expect("session admitted");
                    for qi in 0..queries {
                        let q = &workload[(ti + qi) % workload.len()];
                        client.debug(q.text).expect("query served");
                    }
                    client.bye().expect("clean goodbye");
                    queries
                })
            })
            .collect();
        for h in handles {
            requests += h.join().expect("tenant thread");
        }
    });
    let wall = t0.elapsed();

    let mut canary_client = DebugClient::connect(addr, "canary").expect("canary admitted");
    let canary =
        scrub(&canary_client.debug(workload[0].text).expect("canary served").report.to_string());
    canary_client.bye().expect("clean goodbye");

    let metrics = server.shutdown();
    let probes = metrics.probes_executed.into_inner();
    let ok = metrics.queries_ok.into_inner();
    WarmPoint {
        variant,
        tenants,
        requests,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: if wall.is_zero() { 0.0 } else { requests as f64 / wall.as_secs_f64() },
        probes_executed: probes,
        probes_per_request: if ok == 0 { 0.0 } else { probes as f64 / ok as f64 },
        cache_bytes: metrics.shared_cache_bytes.into_inner(),
        cache_evictions: metrics.shared_cache_evictions.into_inner(),
        cache_hits: metrics.shared_cache_hits.into_inner(),
        cache_misses: metrics.shared_cache_misses.into_inner(),
        canary,
    }
}

/// One cross-session batching point's aggregated numbers (E20).
struct BatchPoint {
    variant: &'static str,
    tenants: usize,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    probes_executed: u64,
    probes_per_request: f64,
    merged_waves: u64,
    coalesce_ratio: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Runs one E20 point: `tenants` closed-loop clients walk the same workload
/// *aligned per request* (a barrier before every query), so concurrent
/// sessions park near-identical probe waves in the exchange — the workload
/// shape batching exists for. Latencies are server-observed service times,
/// the same clock as E17. Shared cache stays off: batching must earn its
/// probe savings alone, on a cold store.
fn run_batch_point(
    system: &kwdebug::debugger::NonAnswerDebugger,
    tenants: usize,
    queries: usize,
    workers: usize,
    batching: Option<BatchConfig>,
    variant: &'static str,
) -> BatchPoint {
    let config = ServeConfig {
        workers,
        // E20 measures dispatch, not admission: every tenant resident.
        max_inflight: tenants + 1,
        debug: *system.config(),
        batching,
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .expect("server binds on loopback");
    let addr = server.addr();
    let workload = datagen::paper_queries();
    let barrier = Barrier::new(tenants);

    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(tenants * queries);
    std::thread::scope(|s| {
        let workload = &workload;
        let barrier = &barrier;
        let handles: Vec<_> = (0..tenants)
            .map(|ti| {
                s.spawn(move || {
                    let tenant = format!("tenant{ti}");
                    let mut client =
                        DebugClient::connect(addr, &tenant).expect("session admitted");
                    let mut latencies = Vec::with_capacity(queries);
                    for qi in 0..queries {
                        // Align every tenant on the same query so their
                        // frontiers genuinely overlap in flight.
                        barrier.wait();
                        let q = &workload[qi % workload.len()];
                        let wire = client.debug(q.text).expect("query served");
                        latencies.push(wire.server_ns);
                    }
                    client.bye().expect("clean goodbye");
                    latencies
                })
            })
            .collect();
        for h in handles {
            all_latencies.extend(h.join().expect("tenant thread"));
        }
    });
    let wall = t0.elapsed();

    let (merged, submitted, coalesced) = server
        .wave_exchange()
        .map_or((0, 0, 0), |ex| (ex.merged_waves(), ex.submitted_probes(), ex.coalesced_probes()));
    let metrics = server.shutdown();
    let probes = metrics.probes_executed.into_inner();
    let ok = metrics.queries_ok.into_inner();
    all_latencies.sort_unstable();
    BatchPoint {
        variant,
        tenants,
        requests: all_latencies.len(),
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: if wall.is_zero() { 0.0 } else { all_latencies.len() as f64 / wall.as_secs_f64() },
        probes_executed: probes,
        probes_per_request: if ok == 0 { 0.0 } else { probes as f64 / ok as f64 },
        merged_waves: merged,
        coalesce_ratio: if submitted == 0 { 0.0 } else { coalesced as f64 / submitted as f64 },
        p50_ns: percentile(&all_latencies, 50),
        p99_ns: percentile(&all_latencies, 99),
    }
}

fn batch_record(args: &Args, p: &BatchPoint, workers: usize) -> String {
    format!(
        "{{\"coalesce_ratio\":{:.4},\"experiment\":\"serve\",\"latency_p50_ns\":{},\
         \"latency_p99_ns\":{},\"max_level\":{},\"merged_waves\":{},\"probes_executed\":{},\
         \"probes_per_request\":{:.3},\"qps\":{:.2},\"requests\":{},\"scale\":\"{}\",\
         \"seed\":{},\"tenants\":{},\"variant\":\"{}\",\"wall_ms\":{:.3},\"workers\":{}}}",
        p.coalesce_ratio,
        p.p50_ns,
        p.p99_ns,
        args.max_level,
        p.merged_waves,
        p.probes_executed,
        p.probes_per_request,
        p.qps,
        p.requests,
        args.scale.name(),
        args.seed,
        p.tenants,
        p.variant,
        p.wall_ms,
        workers,
    )
}

fn warm_record(args: &Args, p: &WarmPoint, workers: usize) -> String {
    format!(
        "{{\"cache_bytes\":{},\"cache_evictions\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"experiment\":\"serve\",\"max_level\":{},\"probes_executed\":{},\
         \"probes_per_request\":{:.3},\"qps\":{:.2},\"requests\":{},\"scale\":\"{}\",\
         \"seed\":{},\"tenants\":{},\"variant\":\"{}\",\"wall_ms\":{:.3},\"workers\":{}}}",
        p.cache_bytes,
        p.cache_evictions,
        p.cache_hits,
        p.cache_misses,
        args.max_level,
        p.probes_executed,
        p.probes_per_request,
        p.qps,
        p.requests,
        args.scale.name(),
        args.seed,
        p.tenants,
        p.variant,
        p.wall_ms,
        workers,
    )
}

fn overload_record(args: &Args, variant: &str, p: &OverloadPoint) -> String {
    format!(
        "{{\"degraded\":{},\"experiment\":\"serve\",\"goodput_qps\":{:.2},\
         \"latency_p50_ns\":{},\"latency_p99_ns\":{},\"max_level\":{},\"scale\":\"{}\",\
         \"seed\":{},\"served\":{},\"sessions\":{},\"shed_rate\":{:.4},\"sheds\":{},\
         \"variant\":\"{}\",\"wall_ms\":{:.3},\"workers\":{}}}",
        p.degraded,
        p.goodput_qps,
        p.p50_ns,
        p.p99_ns,
        args.max_level,
        args.scale.name(),
        args.seed,
        p.served,
        p.sessions,
        p.shed_rate,
        p.sheds,
        variant,
        p.wall_ms,
        p.workers,
    )
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building system (scale {}, level {}, seed {})...",
        args.scale.name(),
        args.max_level,
        args.seed
    );
    let system = build_system(args.scale, args.seed, args.max_level);
    eprintln!(
        "serving {} tuples / {} lattice nodes; sweeping sessions {:?} x {} queries each",
        system.database().total_rows(),
        system.lattice().node_count(),
        args.sessions,
        args.queries
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &sessions in &args.sessions {
        let workers = args.workers.unwrap_or(sessions);
        let p = run_point(&system, sessions, args.queries, workers);
        let us = |ns: u64| ns as f64 / 1e3;
        rows.push(vec![
            p.sessions.to_string(),
            p.workers.to_string(),
            p.queries.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.qps),
            format!("{:.1}", us(p.p50_ns)),
            format!("{:.1}", us(p.p99_ns)),
            format!("{:.1}", us(p.mean_ns)),
            format!("{:.1}", us(p.max_ns)),
        ]);
        records.push(format!(
            "{{\"degraded\":{},\"experiment\":\"serve\",\"latency_max_ns\":{},\
             \"latency_mean_ns\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{},\
             \"max_level\":{},\"qps\":{:.2},\"queries\":{},\"scale\":\"{}\",\"seed\":{},\
             \"sessions\":{},\"wall_ms\":{:.3},\"workers\":{}}}",
            p.degraded,
            p.max_ns,
            p.mean_ns,
            p.p50_ns,
            p.p99_ns,
            args.max_level,
            p.qps,
            p.queries,
            args.scale.name(),
            args.seed,
            p.sessions,
            p.wall_ms,
            p.workers,
        ));
    }

    println!("\nE16: closed-loop serving throughput and latency (client-side clocks)");
    print_table(
        &[
            "sessions", "workers", "requests", "wall ms", "QPS", "p50 us", "p99 us", "mean us",
            "max us",
        ],
        &rows,
    );
    println!();

    if args.overload {
        // Size the overload protocol to the machine: more worker threads
        // than cores just measures the scheduler, not the admission gate.
        let workers = args
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
            })
            .max(1);
        eprintln!(
            "overload protocol: workers {workers}, gate {}, sessions {} then {}",
            workers * 2,
            workers,
            workers * 6
        );
        // Same total request count on both points (p99 over a dozen samples
        // is a coin flip, so both points serve 24× the per-session query
        // budget): the uncontended point runs few long sessions, the
        // overload point spreads the same work over 6× the sessions.
        let base = run_overload_point(&system, workers, args.queries * 24, workers);
        let hot = run_overload_point(&system, workers * 6, args.queries * 4, workers);
        let us = |ns: u64| ns as f64 / 1e3;
        let overload_rows: Vec<Vec<String>> = [("uncontended", &base), ("overload", &hot)]
            .iter()
            .map(|(variant, p)| {
                vec![
                    (*variant).to_string(),
                    p.sessions.to_string(),
                    p.served.to_string(),
                    p.sheds.to_string(),
                    format!("{:.1}%", p.shed_rate * 100.0),
                    format!("{:.0}", p.goodput_qps),
                    format!("{:.1}", us(p.p50_ns)),
                    format!("{:.1}", us(p.p99_ns)),
                ]
            })
            .collect();
        println!("E17: overload shed-not-collapse (served requests only)");
        print_table(
            &["variant", "sessions", "served", "sheds", "shed rate", "goodput", "p50 us", "p99 us"],
            &overload_rows,
        );
        let ratio = if base.p99_ns == 0 { 0.0 } else { hot.p99_ns as f64 / base.p99_ns as f64 };
        println!(
            "\noverload p99 / uncontended p99 = {ratio:.2} (shed-not-collapse target: <= 2.0)"
        );
        println!();
        records.push(overload_record(&args, "uncontended", &base));
        records.push(overload_record(&args, "overload", &hot));
    }

    if args.warm {
        let tenants = 8;
        // Phase-shifted over a 10-query workload, each query is cold once
        // and a co-tenant repeat ~ (tenants × queries / 10 − 1) times; 3×
        // the per-session budget keeps the warm fraction high enough that
        // the steady state dominates the aggregate.
        let wq = args.queries * 3;
        let workers = args
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
            })
            .max(1);
        eprintln!("warm protocol: {tenants} tenants x {wq} overlapping queries, {workers} workers");
        let off = run_warm_point(&system, tenants, wq, workers, None, "warm_off");
        let on = run_warm_point(
            &system,
            tenants,
            wq,
            workers,
            Some(SharedCacheConfig::default()),
            "warm_shared",
        );
        // Over-budget point: a ceiling at a quarter of the measured warm
        // working set (whatever the scale) guarantees eviction pressure.
        let tiny_budget = (on.cache_bytes / 4).max(64);
        let tiny = run_warm_point(
            &system,
            tenants,
            wq,
            workers,
            Some(SharedCacheConfig { budget_bytes: Some(tiny_budget), online_pa: true }),
            "warm_shared_tiny_budget",
        );

        let warm_rows: Vec<Vec<String>> = [&off, &on, &tiny]
            .iter()
            .map(|p| {
                vec![
                    p.variant.to_string(),
                    p.requests.to_string(),
                    format!("{:.1}", p.wall_ms),
                    format!("{:.0}", p.qps),
                    p.probes_executed.to_string(),
                    format!("{:.2}", p.probes_per_request),
                    p.cache_hits.to_string(),
                    p.cache_misses.to_string(),
                    p.cache_evictions.to_string(),
                    p.cache_bytes.to_string(),
                ]
            })
            .collect();
        println!("E18: warm multi-tenant shared-cache protocol (8 overlapping tenants)");
        print_table(
            &[
                "variant", "requests", "wall ms", "QPS", "probes", "probes/req", "hits",
                "misses", "evictions", "bytes",
            ],
            &warm_rows,
        );
        let qps_ratio = if off.qps == 0.0 { 0.0 } else { on.qps / off.qps };
        let probe_ratio = if on.probes_per_request == 0.0 {
            0.0
        } else {
            off.probes_per_request / on.probes_per_request
        };
        println!(
            "\nshared-on / shared-off: {qps_ratio:.2}x QPS, {probe_ratio:.2}x fewer probes \
             per request (target: >= 2.0x on either axis)"
        );
        println!();

        // Sharing the cache must never change answers: the warm canary
        // reports agree across all three points once executed-query counts
        // and timings are blanked.
        assert_eq!(off.canary, on.canary, "E18: shared-cache canary report diverged");
        assert_eq!(off.canary, tiny.canary, "E18: tiny-budget canary report diverged");
        // The byte budget is a hard ceiling: the over-budget point (capped
        // at a quarter of the measured warm working set) must have evicted
        // while the final accounted footprint stays at or under the budget.
        assert!(tiny.cache_evictions > 0, "E18: over-budget run never evicted");
        assert!(
            tiny.cache_bytes <= tiny_budget,
            "E18: cache_bytes {} exceeds budget {tiny_budget}",
            tiny.cache_bytes
        );
        records.push(warm_record(&args, &off, workers));
        records.push(warm_record(&args, &on, workers));
        records.push(warm_record(&args, &tiny, workers));
    }

    if args.batch {
        let tenants = 8;
        let bq = args.queries * 2;
        // Every tenant must be resident and in flight at once for waves to
        // overlap, so the service capacity matches the tenant count.
        let workers = args.workers.unwrap_or(tenants).max(1);
        // A window comfortably above per-query barrier skew; flushes almost
        // always fire early via the everyone-parked rule, the window only
        // catches stragglers.
        let knobs = BatchConfig { window_us: 2_000, max_wave: 512, min_sessions: 2 };
        eprintln!("batch protocol: {tenants} tenants x {bq} aligned queries, {workers} workers");
        let off = run_batch_point(&system, tenants, bq, workers, None, "batch_off");
        let on = run_batch_point(&system, tenants, bq, workers, Some(knobs), "batch_on");
        // The bypass: a solo tenant through a batching-enabled server must
        // pay nothing for the exchange it never uses.
        let sq = args.queries * 8;
        let solo_off = run_batch_point(&system, 1, sq, 2, None, "batch_solo_off");
        let solo_on = run_batch_point(&system, 1, sq, 2, Some(knobs), "batch_solo_on");

        let us = |ns: u64| ns as f64 / 1e3;
        let batch_rows: Vec<Vec<String>> = [&off, &on, &solo_off, &solo_on]
            .iter()
            .map(|p| {
                vec![
                    p.variant.to_string(),
                    p.tenants.to_string(),
                    p.requests.to_string(),
                    format!("{:.0}", p.qps),
                    p.probes_executed.to_string(),
                    format!("{:.2}", p.probes_per_request),
                    p.merged_waves.to_string(),
                    format!("{:.2}", p.coalesce_ratio),
                    format!("{:.1}", us(p.p50_ns)),
                    format!("{:.1}", us(p.p99_ns)),
                ]
            })
            .collect();
        println!("E20: cross-session batched probing (8 aligned tenants, cold shared cache)");
        print_table(
            &[
                "variant", "tenants", "requests", "QPS", "probes", "probes/req", "merged",
                "coalesce", "p50 us", "p99 us",
            ],
            &batch_rows,
        );
        let probe_ratio = if on.probes_per_request == 0.0 {
            0.0
        } else {
            off.probes_per_request / on.probes_per_request
        };
        println!(
            "\nbatch-on / batch-off: {probe_ratio:.2}x fewer probe executions per request \
             (target: >= 2.0x)"
        );
        let solo_delta = if solo_off.p50_ns == 0 {
            0.0
        } else {
            solo_on.p50_ns as f64 / solo_off.p50_ns as f64
        };
        println!("solo p50 with batching on / off = {solo_delta:.2} (bypass target: <= 1.10)");
        println!();
        assert!(
            probe_ratio >= 2.0,
            "E20: batching saved only {probe_ratio:.2}x probes per request (need >= 2.0x)"
        );
        assert!(on.merged_waves > 0, "E20: aligned tenants never merged a wave");
        assert_eq!(
            solo_on.merged_waves, 0,
            "E20: a solo tenant entered the exchange (bypass broken)"
        );
        // 10% relative plus a small absolute floor — on the tiny scale a
        // request is tens of microseconds and scheduler jitter dominates.
        assert!(
            solo_on.p50_ns as f64 <= solo_off.p50_ns as f64 * 1.10 + 300_000.0,
            "E20: solo p50 {}ns vs {}ns off — bypass must be free",
            solo_on.p50_ns,
            solo_off.p50_ns
        );
        records.push(batch_record(&args, &off, workers));
        records.push(batch_record(&args, &on, workers));
        records.push(batch_record(&args, &solo_off, 2));
        records.push(batch_record(&args, &solo_on, 2));
    }

    write_records("exp_serve", &records);
}
