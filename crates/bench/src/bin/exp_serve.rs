//! Experiment E16 — serving-layer load generator (`kwserve` under
//! concurrency).
//!
//! Starts a real [`kwserve::Server`] on a loopback port over one shared
//! substrate, then sweeps closed-loop session counts: for each count `S`,
//! `S` client threads connect as tenants, each runs a fixed number of
//! Table 2 workload queries back to back over its own session, and every
//! request's client-side wall-clock is recorded. Reported per sweep point:
//! requests, wall time, throughput (QPS) and the latency distribution
//! (p50 / p99 / mean / max) — the serving numbers the library benches
//! cannot produce, because they include framing, socket hops and the
//! per-session state split.
//!
//! Records go to `results/BENCH_exp_serve.json` via the shared writer
//! ([`bench::harness::write_records`]), one stable-JSON line per sweep
//! point. See `EXPERIMENTS.md` §E16 and `SERVING.md` for interpretation.
//!
//! Usage: `exp_serve [--scale S] [--max-level N] [--seed N]
//! [--sessions 2,8,64] [--queries N] [--workers N]`
//! (workers defaults to the sweep point's session count, so every session
//! is served concurrently rather than queued in the accept backlog).

use std::time::Instant;

use bench::harness::write_records;
use bench::{build_system, print_table, DataScale};
use kwserve::{DebugClient, ServeConfig, Server, TenantPolicy, TenantRegistry};

struct Args {
    scale: DataScale,
    max_level: usize,
    seed: u64,
    sessions: Vec<usize>,
    queries: usize,
    workers: Option<usize>,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: DataScale::Tiny,
        max_level: 3,
        seed: 7,
        sessions: vec![2, 8, 64],
        queries: 8,
        workers: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                out.scale = DataScale::parse(value(i)).unwrap_or_else(|| {
                    eprintln!("unknown scale `{}` (tiny|small|medium|paper)", args[i + 1]);
                    std::process::exit(2);
                });
            }
            "--max-level" => out.max_level = expect_num(value(i), "--max-level"),
            "--seed" => out.seed = expect_num(value(i), "--seed"),
            "--queries" => out.queries = expect_num(value(i), "--queries"),
            "--workers" => out.workers = Some(expect_num(value(i), "--workers")),
            "--sessions" => {
                out.sessions = value(i)
                    .split(',')
                    .map(|s| expect_num(s, "--sessions"))
                    .collect();
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --scale tiny|small|medium|paper  --max-level N  --seed N  \
                     --sessions N,N,...  --queries N  --workers N"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    out
}

fn expect_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{s}`");
        std::process::exit(2);
    })
}

/// One sweep point's aggregated serving numbers.
struct SweepPoint {
    sessions: usize,
    workers: usize,
    queries: usize,
    degraded: usize,
    wall_ms: f64,
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Runs one closed-loop sweep point: a fresh server, `sessions` concurrent
/// client threads, `queries` requests each.
fn run_point(
    system: &kwdebug::debugger::NonAnswerDebugger,
    sessions: usize,
    queries: usize,
    workers: usize,
) -> SweepPoint {
    let config = ServeConfig { workers, debug: *system.config(), ..ServeConfig::default() };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .expect("server binds on loopback");
    let addr = server.addr();
    let workload = datagen::paper_queries();

    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(sessions * queries);
    let mut degraded = 0usize;
    std::thread::scope(|s| {
        let workload = &workload;
        let handles: Vec<_> = (0..sessions)
            .map(|si| {
                s.spawn(move || {
                    let tenant = format!("tenant{}", si % 8);
                    let mut client =
                        DebugClient::connect(addr, &tenant).expect("session admitted");
                    let mut latencies = Vec::with_capacity(queries);
                    let mut degraded = 0usize;
                    for qi in 0..queries {
                        let q = &workload[(si + qi) % workload.len()];
                        let t = Instant::now();
                        let wire = client.debug(q.text).expect("query served");
                        latencies.push(t.elapsed().as_nanos() as u64);
                        degraded += wire.degraded as usize;
                    }
                    client.bye().expect("clean goodbye");
                    (latencies, degraded)
                })
            })
            .collect();
        for h in handles {
            let (lat, deg) = h.join().expect("session thread");
            all_latencies.extend(lat);
            degraded += deg;
        }
    });
    let wall = t0.elapsed();
    server.shutdown();

    all_latencies.sort_unstable();
    let n = all_latencies.len();
    let mean = if n == 0 { 0 } else { all_latencies.iter().sum::<u64>() / n as u64 };
    SweepPoint {
        sessions,
        workers,
        queries: n,
        degraded,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: if wall.is_zero() { 0.0 } else { n as f64 / wall.as_secs_f64() },
        p50_ns: percentile(&all_latencies, 50),
        p99_ns: percentile(&all_latencies, 99),
        mean_ns: mean,
        max_ns: all_latencies.last().copied().unwrap_or(0),
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building system (scale {}, level {}, seed {})...",
        args.scale.name(),
        args.max_level,
        args.seed
    );
    let system = build_system(args.scale, args.seed, args.max_level);
    eprintln!(
        "serving {} tuples / {} lattice nodes; sweeping sessions {:?} x {} queries each",
        system.database().total_rows(),
        system.lattice().node_count(),
        args.sessions,
        args.queries
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &sessions in &args.sessions {
        let workers = args.workers.unwrap_or(sessions);
        let p = run_point(&system, sessions, args.queries, workers);
        let us = |ns: u64| ns as f64 / 1e3;
        rows.push(vec![
            p.sessions.to_string(),
            p.workers.to_string(),
            p.queries.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.qps),
            format!("{:.1}", us(p.p50_ns)),
            format!("{:.1}", us(p.p99_ns)),
            format!("{:.1}", us(p.mean_ns)),
            format!("{:.1}", us(p.max_ns)),
        ]);
        records.push(format!(
            "{{\"degraded\":{},\"experiment\":\"serve\",\"latency_max_ns\":{},\
             \"latency_mean_ns\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{},\
             \"max_level\":{},\"qps\":{:.2},\"queries\":{},\"scale\":\"{}\",\"seed\":{},\
             \"sessions\":{},\"wall_ms\":{:.3},\"workers\":{}}}",
            p.degraded,
            p.max_ns,
            p.mean_ns,
            p.p50_ns,
            p.p99_ns,
            args.max_level,
            p.qps,
            p.queries,
            args.scale.name(),
            args.seed,
            p.sessions,
            p.wall_ms,
            p.workers,
        ));
    }

    println!("\nE16: closed-loop serving throughput and latency (client-side clocks)");
    print_table(
        &[
            "sessions", "workers", "requests", "wall ms", "QPS", "p50 us", "p99 us", "mean us",
            "max us",
        ],
        &rows,
    );
    println!();
    write_records("exp_serve", &records);
}
