//! Extension experiment — parallel probe scheduling (EXPERIMENTS.md E13).
//!
//! The paper's traversals are sequential: one probe in flight at a time,
//! which is the right model when the engine is an in-process scan but not
//! when each probe crosses a network or disk boundary. This experiment
//! measures the `kwdebug::parallel` wave scheduler under a *latency-bound*
//! probe model: every probe is delayed by a fixed injected latency (the
//! chaos layer's deterministic delay knob), so wall-clock is dominated by
//! round-trips and the scheduler's job is to overlap them. That is the
//! regime the scheduler targets; on a CPU-bound in-memory engine the waves
//! are too short for threads to pay off and `workers = 1` is the right
//! setting.
//!
//! For each worker count the run also re-checks the determinism contract:
//! the rendered report must be identical (modulo wall-clock) to the
//! sequential one.
//!
//! Usage: `exp_parallel [--scale S] [--max-level N] [--seed N]`
//! (default level 7, i.e. L7 lattices). Emits one metrics record per
//! (query, workers) to `results/BENCH_exp_parallel.json`; `phases.total_ns`
//! carries the measured wall-clock of the debug call.

use std::time::{Duration, Instant};

use bench::{build_system, emit_metrics, print_table, ExpArgs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;
use relengine::FaultConfig;

/// Injected per-probe latency: an order of magnitude above per-probe CPU
/// cost (so runs are round-trip-dominated, the scheduler's target regime),
/// small enough that the full sweep stays in seconds.
const PROBE_LATENCY: Duration = Duration::from_millis(10);

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn scrub(s: &str) -> String {
    s.lines()
        .map(|l| match l.find(" SQL queries, ") {
            Some(i) => format!("{} SQL queries, (t)", &l[..i]),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(7);
    println!(
        "== Extension: parallel probe scheduling under {}ms probe latency \
         (scale {:?}, level {max_level}) ==\n",
        PROBE_LATENCY.as_millis(),
        args.scale
    );
    let mut system = build_system(args.scale, args.seed, max_level);
    system.set_chaos(Some(FaultConfig {
        latency_per_mille: 1000,
        latency: PROBE_LATENCY,
        ..FaultConfig::quiet(args.seed)
    }));

    let strategy = StrategyKind::BottomUpWithReuse; // widest waves
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut speedup_at_4 = f64::INFINITY;
    for q in paper_queries().iter().take(4) {
        let mut baseline: Option<(Duration, String)> = None;
        for workers in WORKER_COUNTS {
            system.set_workers(workers);
            let t0 = Instant::now();
            let report = system
                .debug_with_strategy(q.text, strategy)
                .expect("latency-only chaos never fails a probe");
            let wall = t0.elapsed();
            let rendered = scrub(&report.to_string());
            let (t1, seq) = baseline.get_or_insert_with(|| (wall, rendered.clone()));
            assert_eq!(
                &rendered, seq,
                "{} workers={workers}: parallel report drifted from sequential",
                q.id
            );
            let speedup = t1.as_secs_f64() / wall.as_secs_f64();
            if workers == 4 {
                speedup_at_4 = speedup_at_4.min(speedup);
            }
            let probes = report.probes();
            rows.push(vec![
                q.id.to_string(),
                workers.to_string(),
                probes.probes_executed.to_string(),
                probes.steals.to_string(),
                format!("{:.0}", wall.as_secs_f64() * 1e3),
                format!("{speedup:.2}x"),
            ]);
            let mut rec = kwdebug::metrics::MetricsSnapshot {
                experiment: "exp_parallel".to_owned(),
                query: q.id.to_owned(),
                strategy: strategy.to_string(),
                variant: format!("workers={workers}"),
                scale: args.scale.name().to_owned(),
                max_level: max_level as u64,
                interpretations: report.interpretations.len() as u64,
                lattice_bytes: 0,
                probes,
                phases: Default::default(),
                prune: None,
                levels: Vec::new(),
            };
            rec.phases.total = wall;
            records.push(rec);
        }
    }
    print_table(&["query", "workers", "probes", "steals", "wall ms", "speedup"], &rows);
    println!(
        "\nworst speedup at 4 workers: {speedup_at_4:.2}x \
         ({}; reports identical at every worker count)",
        if speedup_at_4 >= 2.0 { "target >=2x met" } else { "BELOW the 2x target" }
    );
    emit_metrics("exp_parallel", &records);
}
