//! Ablation — within-traversal result memoization (extension).
//!
//! The paper executes each SQL query afresh, so the no-reuse traversals (BU,
//! TD) re-execute sub-queries shared between MTNs. This extension caches
//! aliveness per lattice node for the lifetime of one interpretation's
//! oracle, recovering the reuse variants' sharing without changing the
//! traversal order. (The cache is deliberately per-interpretation: the same
//! lattice node can instantiate to different SQL under another
//! interpretation, so a cross-interpretation cache would be unsound.)
//!
//! Usage: `exp_memo [--scale S] [--max-level N]` (default N=5).

use bench::{build_system, print_table, ExpArgs};
use datagen::paper_queries;
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== Ablation: per-node memoization within a traversal \
         (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);

    let mut rows = Vec::new();
    for q in paper_queries() {
        let query = KeywordQuery::parse(q.text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());

        let mut plain = 0u64;
        let mut memoized = 0u64;
        let mut memo_hits = 0u64;
        for (memoize, counter) in [(false, &mut plain), (true, &mut memoized)] {
            for interp in &mapping.interpretations {
                let pruned = PrunedLattice::build(system.lattice(), interp);
                let mut oracle = AlivenessOracle::new(
                    system.database(),
                    Some(system.index()),
                    interp,
                    &mapping.keywords,
                    memoize,
                );
                let out = traversal::run(
                    StrategyKind::BottomUp, // no-reuse order benefits most
                    system.lattice(),
                    &pruned,
                    &mut oracle,
                    0.5,
                )
                .expect("traversal runs");
                *counter += out.sql_queries;
                if memoize {
                    memo_hits += oracle.memo_hits();
                }
            }
        }
        let saved = plain.saturating_sub(memoized);
        rows.push(vec![
            q.id.to_string(),
            mapping.interpretations.len().to_string(),
            plain.to_string(),
            memoized.to_string(),
            saved.to_string(),
            memo_hits.to_string(),
        ]);
    }
    print_table(
        &["query", "interp", "BU plain", "BU memo", "saved", "memo hits"],
        &rows,
    );
    println!("\n(memoization recovers most of BUWR's advantage without changing BU's order)");
}
