//! Experiment E7 — Table 3: MTN and MPAN counts at lattice levels 3/5/7.
//!
//! For each workload query and each maximum lattice level, the number of
//! candidate networks (MTNs) and of maximal partially alive nodes (MPANs)
//! across the dead ones. Paper shape: both counts grow steeply with the
//! level — most MTNs and MPANs live at the higher levels, which is why
//! top-down traversals beat bottom-up ones on this workload.
//!
//! Usage: `exp_distribution [--scale S] [--max-level N]` — levels 3 and 5
//! always run; 7 runs when `--max-level 7`.

use bench::{build_system, print_table, run_query, ExpArgs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;

fn main() {
    let args = ExpArgs::parse();
    let top = args.max_level.unwrap_or(5);
    let levels: Vec<usize> = [3usize, 5, 7].into_iter().filter(|&l| l <= top).collect();
    println!("== Table 3: MTN/MPAN distribution (scale {:?}, levels {levels:?}) ==\n", args.scale);

    // (query, level) -> (mtns, mpans)
    let mut cells = vec![vec![(0usize, 0usize); levels.len()]; 10];
    for (li, &level) in levels.iter().enumerate() {
        let system = build_system(args.scale, args.seed, level);
        for (qi, q) in paper_queries().iter().enumerate() {
            let agg = run_query(&system, q.text, StrategyKind::TopDownWithReuse)
                .expect("workload query runs");
            cells[qi][li] = (agg.mtns(), agg.mpans);
        }
    }

    let mut headers: Vec<String> = vec!["query".into()];
    for &l in &levels {
        headers.push(format!("MTN@L{l}"));
    }
    for &l in &levels {
        headers.push(format!("MPAN@L{l}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for (qi, q) in paper_queries().iter().enumerate() {
        let mut row = vec![q.id.to_string()];
        row.extend(cells[qi].iter().map(|c| c.0.to_string()));
        row.extend(cells[qi].iter().map(|c| c.1.to_string()));
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    println!("\n(most MTNs and MPANs concentrate at the higher levels, as in the paper)");
}
