//! Extension experiment — mutable databases (EXPERIMENTS.md E19).
//!
//! The epoch-stamped write path exists so that a mutated database does NOT
//! force a drop-and-rebuild of the debugging stack. This experiment measures
//! that claim directly. Each round applies a batch of writes (appends,
//! updates, deletes — several carrying workload keywords) through
//! [`kwdebug::MutableDatabase`], then answers the paper workload two ways:
//!
//! * `incremental` — open a session on the live coordinator: the inverted
//!   index was maintained in place by delta postings (merged/compacted at
//!   write time), and the process-wide shared evaluation cache keeps every
//!   entry the writes did not invalidate;
//! * `rebuild`    — what a static stack must do: clone the mutated tables,
//!   rebuild the inverted index and candidate-network machinery from
//!   scratch ([`NonAnswerDebugger::new`]), and answer the same workload from
//!   a stone-cold cache.
//!
//! Both arms produce bit-identical reports (`tests/mutation_equivalence.rs`
//! is the enforcing differential suite), so wall-clock is a like-for-like
//! comparison. `phases.mapping` on each emitted record carries the arm's
//! setup share (session handoff vs full rebuild), `phases.total` the whole
//! round. Target: incremental total ≥ 2× faster across rounds.
//!
//! Usage: `exp_mutate [--scale S] [--max-level N] [--seed N]` (default scale
//! small, level 3). Emits one record per (round, arm) to
//! `results/BENCH_exp_mutate.json`.

use std::time::Instant;

use bench::{build_mutable_system, emit_metrics, mutable_session_config, print_table, ExpArgs};
use datagen::paper_queries;
use kwdebug::debugger::NonAnswerDebugger;
use kwdebug::metrics::MetricsSnapshot;
use kwdebug::mutable::MutableDatabase;
use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;
use relengine::Value;

const STRATEGY: StrategyKind = StrategyKind::ScoreBasedHeuristic;
const ROUNDS: usize = 6;
const QUERIES: usize = 6;

/// One round's write batch: keyword-bearing appends (so invalidation has
/// real work to do), join links, an in-place update and a tombstone.
fn apply_batch(m: &mut MutableDatabase, round: usize) {
    let publication = m.table_id("publication").expect("dblife schema");
    let writes = m.table_id("writes").expect("dblife schema");
    let base = 1_000_000 + round as i64 * 100;
    let titles = [
        format!("Trio lineage retrospective {round}"),
        format!("VLDB demo treasures {round}"),
        format!("Keyword search over streams {round}"),
        format!("XML histograms revisited {round}"),
        format!("SIGMOD reflections {round}"),
        format!("Probabilistic data cleaning {round}"),
        format!("Graph maintenance notes {round}"),
        format!("Storage engine internals {round}"),
    ];
    let rows: Vec<Vec<Value>> = titles
        .iter()
        .enumerate()
        .map(|(i, t)| vec![Value::Int(base + i as i64), Value::text(t.clone())])
        .collect();
    let ids = m.append_rows(publication, rows).expect("append batch");
    // Spread authorship over the paper's anchor people (Widom, Hristidis,
    // DeRose, Gray) so several workload queries gain or lose join paths.
    m.append_rows(
        writes,
        vec![
            vec![Value::Int(1), Value::Int(base)],
            vec![Value::Int(2), Value::Int(base + 2)],
            vec![Value::Int(6), Value::Int(base + 1)],
            vec![Value::Int(7), Value::Int(base + 4)],
        ],
    )
    .expect("append links");
    m.update_row(
        publication,
        ids[6],
        vec![Value::Int(base + 6), Value::text(format!("Stream histograms survey {round}"))],
    )
    .expect("update");
    m.delete_row(publication, ids[7]).expect("delete");
}

fn run_workload(
    debug: impl Fn(&str) -> DebugReport,
    round: usize,
    arm: &'static str,
    args: &ExpArgs,
    max_level: usize,
    setup: std::time::Duration,
) -> MetricsSnapshot {
    let t0 = Instant::now();
    let mut rec = MetricsSnapshot {
        experiment: "exp_mutate".to_owned(),
        query: format!("round{round}"),
        strategy: STRATEGY.to_string(),
        variant: arm.to_owned(),
        scale: args.scale.name().to_owned(),
        max_level: max_level as u64,
        interpretations: 0,
        lattice_bytes: 0,
        probes: Default::default(),
        phases: Default::default(),
        prune: None,
        levels: Vec::new(),
    };
    for q in paper_queries().iter().take(QUERIES) {
        let report = debug(q.text);
        rec.interpretations += report.interpretations.len() as u64;
        rec.probes.accumulate(report.probes());
    }
    rec.phases.mapping = setup;
    rec.phases.total = setup + t0.elapsed();
    rec
}

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(3);
    println!(
        "== Extension: mutable databases, incremental vs drop-and-rebuild \
         (scale {:?}, level {max_level}, {STRATEGY}) ==\n",
        args.scale
    );

    let mut m = build_mutable_system(args.scale, args.seed, max_level);
    m.share_eval_cache(None);
    let config = kwdebug::debugger::DebugConfig {
        strategy: STRATEGY,
        eval_cache: true,
        ..mutable_session_config(max_level)
    };

    // Warm start: one full pass before any write, as a long-lived service
    // would have.
    {
        let s = m.session(config).expect("session");
        for q in paper_queries().iter().take(QUERIES) {
            s.debug(q.text).expect("warmup");
        }
    }

    let mut records = Vec::new();
    let mut table = Vec::new();
    let (mut inc_total, mut reb_total) = (0.0f64, 0.0f64);
    for round in 0..ROUNDS {
        apply_batch(&mut m, round);

        let t0 = Instant::now();
        let session = m.session(config).expect("session");
        let setup = t0.elapsed();
        let inc =
            run_workload(|q| session.debug(q).expect("clean"), round, "incremental", &args, max_level, setup);
        drop(session);

        let t0 = Instant::now();
        let fresh = NonAnswerDebugger::new(m.database().clone(), config).expect("rebuild");
        let setup = t0.elapsed();
        let reb =
            run_workload(|q| fresh.debug(q).expect("clean"), round, "rebuild", &args, max_level, setup);

        inc_total += inc.phases.total.as_secs_f64();
        reb_total += reb.phases.total.as_secs_f64();
        for r in [&inc, &reb] {
            table.push(vec![
                format!("round{round}"),
                r.variant.clone(),
                format!("{:.2}", r.phases.mapping.as_secs_f64() * 1e3),
                format!("{:.2}", r.phases.total.as_secs_f64() * 1e3),
                r.probes.probes_executed.to_string(),
                r.probes.selection_cache_hits.to_string(),
                r.probes.delta_postings_merged.to_string(),
                r.probes.entries_invalidated.to_string(),
                r.probes.compactions.to_string(),
                r.probes.epoch.to_string(),
            ]);
        }
        records.push(inc);
        records.push(reb);
    }

    print_table(
        &[
            "round", "arm", "setup ms", "total ms", "probes", "sel-hit", "delta-merge",
            "invalidated", "compactions", "epoch",
        ],
        &table,
    );

    let ratio = reb_total / inc_total;
    println!(
        "\nround totals over {ROUNDS} rounds x {QUERIES} queries: \
         incremental {:.1} ms, rebuild {:.1} ms",
        inc_total * 1e3,
        reb_total * 1e3
    );
    println!(
        "rebuild/incremental speedup: {ratio:.2}x ({})",
        if ratio >= 2.0 { "target >=2x met" } else { "BELOW the 2x target" }
    );
    emit_metrics("exp_mutate", &records);
}
