//! Experiment E8 — Table 4: SQL queries for Q3 as the lattice level grows.
//!
//! Q3 ("Agrawal Chaudhuri Das") is the heaviest workload query — three
//! person names, many candidate networks, heavy descendant overlap. The
//! table shows executed-SQL counts per traversal strategy at levels 3/5/7.
//! Paper shape: counts rise with the level; reuse variants need markedly
//! fewer queries than their plain counterparts; SBH needs the fewest at the
//! top level.
//!
//! Usage: `exp_levels [--scale S] [--max-level N]` — levels 3 and 5 always
//! run; 7 runs when `--max-level 7`.

use bench::{build_system, print_table, run_query, ExpArgs};
use kwdebug::traversal::StrategyKind;

const QUERY: &str = "Agrawal Chaudhuri Das";

fn main() {
    let args = ExpArgs::parse();
    let top = args.max_level.unwrap_or(5);
    let levels: Vec<usize> = [3usize, 5, 7].into_iter().filter(|&l| l <= top).collect();
    println!(
        "== Table 4: SQL queries for Q3 per level (scale {:?}, levels {levels:?}) ==\n",
        args.scale
    );

    let mut rows = Vec::new();
    for &level in &levels {
        let system = build_system(args.scale, args.seed, level);
        let mut row = vec![level.to_string()];
        for kind in StrategyKind::ALL {
            let agg = run_query(&system, QUERY, kind).expect("Q3 runs");
            row.push(agg.sql_queries.to_string());
        }
        rows.push(row);
    }
    print_table(&["level", "BU", "BUWR", "TD", "TDWR", "SBH"], &rows);
    println!("\n(Q3 = \"{QUERY}\")");
}
