//! Interactive keyword-search debugger over the synthetic DBLife database.
//!
//! A small REPL: type keyword queries, get the full answer/non-answer/MPAN
//! report; `:strategy BU|BUWR|TD|TDWR|SBH|BRUTE` switches the traversal,
//! `:quit` exits. Useful for poking at the system the way the paper's
//! intended developer/SEO user would.
//!
//! Usage: `kws_repl [--scale S] [--max-level N]` (default small, N=5), then
//! e.g. `DeRose VLDB` at the prompt.

use std::io::{BufRead, Write};

use bench::{build_system, ExpArgs};
use kwdebug::debugger::NonAnswerDebugger;
use kwdebug::traversal::StrategyKind;

fn parse_strategy(name: &str) -> Option<StrategyKind> {
    match name.to_ascii_uppercase().as_str() {
        "BU" => Some(StrategyKind::BottomUp),
        "TD" => Some(StrategyKind::TopDown),
        "BUWR" => Some(StrategyKind::BottomUpWithReuse),
        "TDWR" => Some(StrategyKind::TopDownWithReuse),
        "SBH" => Some(StrategyKind::ScoreBasedHeuristic),
        "BRUTE" => Some(StrategyKind::BruteForce),
        _ => None,
    }
}

fn handle(system: &NonAnswerDebugger, strategy: StrategyKind, line: &str) {
    match system.debug_with_strategy(line, strategy) {
        Ok(report) => {
            print!("{report}");
            println!(
                "[{} answers, {} non-answers, {} MPANs; {} SQL queries in {:?}]",
                report.answer_count(),
                report.non_answer_count(),
                report.mpan_count(),
                report.sql_queries(),
                report.sql_time(),
            );
        }
        Err(e) => println!("error: {e}"),
    }
}

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    eprintln!("building system (scale {:?}, level {max_level})...", args.scale);
    let system = build_system(args.scale, args.seed, max_level);
    eprintln!(
        "ready: {} tuples, lattice {} nodes. Try `DeRose VLDB` or `Widom Trio`; :quit to exit.",
        system.database().total_rows(),
        system.lattice().node_count()
    );

    let mut strategy = StrategyKind::ScoreBasedHeuristic;
    let stdin = std::io::stdin();
    loop {
        print!("kws[{}]> ", strategy.name());
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("strategy") => match parts.next().and_then(parse_strategy) {
                    Some(s) => {
                        strategy = s;
                        println!("strategy = {}", strategy.name());
                    }
                    None => println!("usage: :strategy BU|TD|BUWR|TDWR|SBH|BRUTE"),
                },
                _ => println!("commands: :strategy <name>, :quit"),
            }
            continue;
        }
        handle(&system, strategy, line);
    }
}
