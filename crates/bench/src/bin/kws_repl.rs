//! Interactive keyword-search debugger over the synthetic DBLife database.
//!
//! A small REPL: type keyword queries, get the full answer/non-answer/MPAN
//! report; `:strategy BU|BUWR|TD|TDWR|SBH|BRUTE` switches the traversal,
//! `:metrics` dumps the probe counters and phase timing of the last query
//! (human table plus the stable [`kwdebug::metrics::MetricsSnapshot`] JSON),
//! `:lattice` prints the offline lattice's per-level node counts and the
//! byte breakdown of its resident arena ([`kwdebug::lattice::Lattice::memory_footprint`]),
//! `:budget N [MS]` caps probes (and optionally a deadline in milliseconds)
//! per interpretation, `:chaos SEED T P [L]` turns on deterministic fault
//! injection (per-mille transient/permanent/latency rates), `:budget off` /
//! `:chaos off` restore the defaults, `:cache on|off` toggles the
//! session-scoped cross-probe evaluation cache ([`kwdebug::evalcache`]) and
//! bare `:cache` shows its resident contents plus the last query's hit
//! counters, `:quit` exits. Useful for poking at
//! the system — including its degraded mode — the way the paper's intended
//! developer/SEO user would.
//!
//! The local database is writable through the single-writer coordinator
//! ([`kwdebug::MutableDatabase`]): `:mutate append TABLE v1,v2,...`,
//! `:mutate update TABLE ROW v1,v2,...` and `:mutate delete TABLE ROW`
//! bump the write epoch, incrementally maintain the inverted index, and
//! selectively invalidate the evaluation cache — re-run a query before and
//! after to watch a non-answer become an answer. `:epoch` shows the current
//! `(db_id, epoch)` identity, the index's delta state, and what invalidation
//! has evicted so far.
//!
//! Usage: `kws_repl [--scale S] [--max-level N]` (default small, N=5), then
//! e.g. `DeRose VLDB` at the prompt.
//!
//! The same binary also speaks the `kwserve` wire protocol (SERVING.md):
//!
//! * `kws_repl --listen ADDR [--workers N] [--shared-cache]` builds the
//!   system and serves it over TCP until stdin closes (EOF or a line), then
//!   shuts down gracefully and prints the final server counters;
//!   `--shared-cache` turns on the process-wide evaluation cache
//!   ([`kwserve::SharedCacheConfig::default`]: 64 MiB budget, online `p_a`);
//!   `--batch-window-us N` / `--batch-max-wave N` turn on cross-session
//!   probe batching ([`kwdebug::batch`]) with the given window/wave cap
//!   (the unset knob keeps its [`kwdebug::BatchConfig`] default).
//! * `kws_repl --connect HOST:PORT [--tenant NAME]` skips the local build
//!   entirely and runs the REPL as one [`ResilientClient`] session against a
//!   running server: queries and `:strategy` work as usual (the strategy
//!   rides along per request), overload refusals and dropped connections are
//!   retried with capped-exponential backoff, `:metrics` fetches the
//!   session's server-side record plus the client-observed reconnect count,
//!   `:cache` renders the server's process-wide shared-cache gauges
//!   (`shared_cache_*`; zeroes when [`kwserve::ServeConfig::shared_cache`]
//!   is off), `:batch` renders the wave-exchange gauges (`batch_*`; zeroes
//!   when [`kwserve::ServeConfig::batching`] is off or traffic never
//!   overlapped), `:epoch` prints the database epoch the server's snapshot
//!   serves (from `Welcome` — the session's local pin; reports from
//!   different epochs are not comparable), and the local-only knobs
//!   (`:lattice`, `:budget`, `:chaos`, `:mutate`) say so.

use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::time::Duration;

use bench::{build_mutable_system, build_system, mutable_session_config, DataScale};
use kwdebug::budget::ProbeBudget;
use kwdebug::debugger::NonAnswerDebugger;
use kwdebug::metrics::MetricsSnapshot;
use kwdebug::mutable::MutableDatabase;
use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;
use kwdebug::BatchConfig;
use kwserve::{
    ReconnectPolicy, ResilientClient, ServeConfig, Server, SharedCacheConfig, TenantPolicy,
    TenantRegistry,
};
use relengine::{FaultConfig, Value};

/// REPL arguments: the common experiment knobs plus the two wire modes.
struct ReplArgs {
    scale: DataScale,
    max_level: Option<usize>,
    seed: u64,
    connect: Option<SocketAddr>,
    tenant: String,
    listen: Option<SocketAddr>,
    workers: usize,
    shared_cache: bool,
    batch_window_us: Option<u64>,
    batch_max_wave: Option<usize>,
}

fn parse_args() -> ReplArgs {
    let mut out = ReplArgs {
        scale: DataScale::Small,
        max_level: None,
        seed: 7,
        connect: None,
        tenant: "repl".to_owned(),
        listen: None,
        workers: 4,
        shared_cache: false,
        batch_window_us: None,
        batch_max_wave: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        let addr = |i: usize| -> SocketAddr {
            value(i).parse().unwrap_or_else(|_| {
                eprintln!("{} expects HOST:PORT, got `{}`", args[i], args[i + 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                out.scale = DataScale::parse(value(i)).unwrap_or_else(|| {
                    eprintln!("unknown scale `{}` (tiny|small|medium|paper)", args[i + 1]);
                    std::process::exit(2);
                });
            }
            "--max-level" => {
                out.max_level = Some(value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--max-level expects a number");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                out.seed = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects a number");
                    std::process::exit(2);
                });
            }
            "--workers" => {
                out.workers = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--workers expects a number");
                    std::process::exit(2);
                });
            }
            "--connect" => out.connect = Some(addr(i)),
            "--listen" => out.listen = Some(addr(i)),
            "--tenant" => out.tenant = value(i).to_owned(),
            "--batch-window-us" => {
                out.batch_window_us = Some(value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--batch-window-us expects microseconds");
                    std::process::exit(2);
                }));
            }
            "--batch-max-wave" => {
                out.batch_max_wave = Some(value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--batch-max-wave expects a number");
                    std::process::exit(2);
                }));
            }
            "--shared-cache" => {
                out.shared_cache = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --scale tiny|small|medium|paper  --max-level N  --seed N\n\
                     modes:   --listen HOST:PORT [--workers N] [--shared-cache]\n\
                     \x20                [--batch-window-us N] [--batch-max-wave N]   serve over TCP\n\
                     \x20        --connect HOST:PORT [--tenant NAME]   client session"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    out
}

fn parse_strategy(name: &str) -> Option<StrategyKind> {
    match name.to_ascii_uppercase().as_str() {
        "BU" => Some(StrategyKind::BottomUp),
        "TD" => Some(StrategyKind::TopDown),
        "BUWR" => Some(StrategyKind::BottomUpWithReuse),
        "TDWR" => Some(StrategyKind::TopDownWithReuse),
        "SBH" => Some(StrategyKind::ScoreBasedHeuristic),
        "BRUTE" => Some(StrategyKind::BruteForce),
        _ => None,
    }
}

/// What `:metrics` reports on: the last successful query and its report.
struct LastRun {
    query: String,
    strategy: StrategyKind,
    report: DebugReport,
}

fn handle(system: &NonAnswerDebugger, strategy: StrategyKind, line: &str) -> Option<LastRun> {
    match system.debug_with_strategy(line, strategy) {
        Ok(report) => {
            print!("{report}");
            println!(
                "[{} answers, {} non-answers, {} MPANs; {} SQL queries in {:?}]",
                report.answer_count(),
                report.non_answer_count(),
                report.mpan_count(),
                report.sql_queries(),
                report.sql_time(),
            );
            Some(LastRun { query: line.to_owned(), strategy, report })
        }
        Err(e) => {
            println!("error: {e}");
            None
        }
    }
}

/// `:lattice` — per-level shape and resident-memory breakdown of the shared
/// offline lattice.
fn show_lattice(system: &NonAnswerDebugger) {
    let lattice = system.lattice();
    let fp = lattice.memory_footprint();
    println!(
        "offline lattice: {} nodes, {} levels (maxJoins {})",
        fp.nodes,
        lattice.level_count(),
        lattice.max_joins()
    );
    for level in 1..=lattice.level_count() {
        println!("  level {level:>2}  {:>8} nodes", lattice.level_nodes(level).len());
    }
    let kib = |b: usize| b as f64 / 1024.0;
    println!("resident arena:");
    println!("  networks (JNTS)   {:>10.1} KiB", kib(fp.jnts_bytes));
    println!("  adjacency CSR     {:>10.1} KiB", kib(fp.adjacency_bytes));
    println!("  postings index    {:>10.1} KiB", kib(fp.postings_bytes));
    println!("  levels/flags      {:>10.1} KiB", kib(fp.index_bytes));
    println!("  total             {:>10.1} KiB", kib(fp.total_bytes()));
    println!("workspace reuses so far: {}", system.workspace_reuses());
}

fn show_metrics(system: &NonAnswerDebugger, last: &LastRun, args: &ReplArgs, max_level: usize) {
    let p = last.report.probes();
    let t = &last.report.timing;
    println!("last query: {:?} under {}", last.query, last.strategy.name());
    println!("  probes executed   {}", p.probes_executed);
    println!("  probe time        {:?}", p.probe_time());
    println!("  tuples scanned    {}", p.tuples_scanned);
    println!("  memo hits         {}", p.memo_hits);
    println!("  R1 inferences     {}", p.r1_inferences);
    println!("  R2 inferences     {}", p.r2_inferences);
    println!("  reuse hits        {}", p.reuse_hits);
    println!(
        "  phases: mapping {:?}, pruning {:?}, traversal {:?} (sql {:?}), reporting {:?}, total {:?}",
        t.mapping, t.pruning, t.traversal, t.sql, t.reporting, t.total
    );
    let mut snap = MetricsSnapshot {
        experiment: "kws_repl".into(),
        query: last.query.clone(),
        strategy: last.strategy.name().into(),
        variant: String::new(),
        scale: format!("{:?}", args.scale).to_ascii_lowercase(),
        max_level: max_level as u64,
        interpretations: last.report.interpretations.len() as u64,
        lattice_bytes: system.lattice().memory_footprint().total_bytes() as u64,
        probes: p,
        phases: *t,
        prune: None,
        levels: Vec::new(),
    };
    if let Some(first) = last.report.interpretations.first() {
        let mut prune = first.prune_stats.clone();
        for i in &last.report.interpretations[1..] {
            let s = &i.prune_stats;
            prune.retained_phase1 += s.retained_phase1;
            prune.total_nodes += s.total_nodes;
            prune.mtn_count += s.mtn_count;
            prune.pruned_nodes += s.pruned_nodes;
            prune.mtn_descendants_total += s.mtn_descendants_total;
            prune.mtn_descendants_unique += s.mtn_descendants_unique;
        }
        snap.prune = Some(prune);
    }
    println!("{}", snap.to_json());
}

/// `:cache` — resident contents of the session evaluation cache and, when a
/// query has run, where its probing work went.
fn show_cache(system: &NonAnswerDebugger, enabled: bool, last: Option<&LastRun>) {
    let cache = system.eval_cache();
    println!(
        "evaluation cache: {} ({} selection entries, {} subtree value-sets, {} verdicts, {} keywords, {} payload bytes)",
        if enabled { "on" } else { "off" },
        cache.selection_entries(),
        cache.subtree_entries(),
        cache.verdict_entries(),
        cache.interned_keywords(),
        cache.bytes()
    );
    if let Some(run) = last {
        let p = run.report.probes();
        println!(
            "last query: {} selection hits, {} subtree hits, {} dead shortcuts, {} verdict hits, {} bytes added",
            p.selection_cache_hits,
            p.subtree_cache_hits,
            p.subtree_cache_dead_shortcuts,
            p.verdict_cache_hits,
            p.cache_bytes
        );
    }
    if !enabled {
        println!("(entries stay valid for the session; `:cache on` resumes using them)");
    }
}

/// Parses `:budget N [MS]` / `:budget off` into a probe budget.
fn parse_budget(parts: &mut std::str::SplitWhitespace<'_>) -> Option<ProbeBudget> {
    let first = parts.next()?;
    if first.eq_ignore_ascii_case("off") {
        return Some(ProbeBudget::unlimited());
    }
    let probes: u64 = first.parse().ok()?;
    let mut budget = ProbeBudget::probes(probes);
    if let Some(ms) = parts.next() {
        budget = budget.with_deadline(Duration::from_millis(ms.parse().ok()?));
    }
    Some(budget)
}

/// Parses `:chaos SEED T P [L]` / `:chaos off` into a fault config
/// (`None` = chaos off); per-mille rates as in [`FaultConfig`].
#[allow(clippy::option_option)]
fn parse_chaos(parts: &mut std::str::SplitWhitespace<'_>) -> Option<Option<FaultConfig>> {
    let first = parts.next()?;
    if first.eq_ignore_ascii_case("off") {
        return Some(None);
    }
    let seed: u64 = first.parse().ok()?;
    let transient: u32 = parts.next()?.parse().ok()?;
    let permanent: u32 = parts.next()?.parse().ok()?;
    let latency: u32 = match parts.next() {
        Some(l) => l.parse().ok()?,
        None => 0,
    };
    Some(Some(FaultConfig {
        seed,
        transient_per_mille: transient,
        permanent_per_mille: permanent,
        latency_per_mille: latency,
        latency: Duration::from_micros(100),
        fail_first_transient: 0,
    }))
}

/// `:mutate` value syntax: comma-separated, each item an integer when it
/// parses as one and text otherwise ("5,glow candle,1").
fn parse_values(csv: &str) -> Vec<Value> {
    csv.split(',')
        .map(|s| {
            let s = s.trim();
            match s.parse::<i64>() {
                Ok(i) => Value::Int(i),
                Err(_) => Value::text(s),
            }
        })
        .collect()
}

const MUTATE_USAGE: &str = "usage: :mutate append TABLE v1,v2,...  |  \
                            :mutate update TABLE ROW v1,v2,...  |  \
                            :mutate delete TABLE ROW";

/// `:mutate` — one DML statement through the single-writer write path.
/// The caller has already quiesced (dropped the REPL's session); this
/// returns the human-readable outcome either way.
fn apply_mutation(mdb: &mut MutableDatabase, args: &[String]) -> String {
    let (Some(op), Some(table_name)) = (args.first(), args.get(1)) else {
        return MUTATE_USAGE.to_owned();
    };
    let Some(table) = mdb.table_id(table_name) else {
        return format!("unknown table `{table_name}`");
    };
    let row_arg = |s: &String| s.parse::<u32>().ok();
    let outcome = match op.as_str() {
        "append" if args.len() >= 3 => mdb
            .append_rows(table, vec![parse_values(&args[2..].join(" "))])
            .map(|ids| format!("appended row {} to {table_name}", ids[0])),
        "update" if args.len() >= 4 => match row_arg(&args[2]) {
            Some(row) => mdb
                .update_row(table, row, parse_values(&args[3..].join(" ")))
                .map(|_| format!("updated {table_name} row {row}")),
            None => return MUTATE_USAGE.to_owned(),
        },
        "delete" if args.len() == 3 => match row_arg(&args[2]) {
            Some(row) => mdb
                .delete_row(table, row)
                .map(|_| format!("deleted {table_name} row {row} (tombstoned)")),
            None => return MUTATE_USAGE.to_owned(),
        },
        _ => return MUTATE_USAGE.to_owned(),
    };
    match outcome {
        Ok(msg) => format!(
            "{msg}; now at epoch {} ({} pending delta rows, {} compactions)",
            mdb.epoch(),
            mdb.index().pending_delta_rows(),
            mdb.index().compactions()
        ),
        Err(e) => format!("error: {e}"),
    }
}

/// `:epoch` — the `(db_id, epoch)` identity and the incremental-maintenance
/// state of the index and the shared evaluation cache.
fn show_epoch(mdb: &MutableDatabase) {
    println!(
        "database id {} at write epoch {}",
        mdb.db_id(),
        mdb.epoch()
    );
    println!(
        "index: applied epoch {}, {} pending delta rows, {} compactions",
        mdb.index().applied_epoch(),
        mdb.index().pending_delta_rows(),
        mdb.index().compactions()
    );
    if let Some(store) = mdb.shared_cache() {
        println!(
            "cache: pinned at epoch {}, {} entries invalidated so far, {} bytes resident",
            store.epoch(),
            store.invalidated(),
            store.bytes()
        );
    }
}

/// `--listen` mode: serve the built system over TCP until stdin closes.
fn serve_mode(args: &ReplArgs, addr: SocketAddr, max_level: usize) {
    eprintln!("building system (scale {:?}, level {max_level})...", args.scale);
    let system = build_system(args.scale, args.seed, max_level);
    // Either batch flag opts the server into cross-session wave batching;
    // the unset knob keeps its kwdebug default.
    let batching = (args.batch_window_us.is_some() || args.batch_max_wave.is_some()).then(|| {
        let mut bc = BatchConfig::default();
        if let Some(us) = args.batch_window_us {
            bc.window_us = us;
        }
        if let Some(n) = args.batch_max_wave {
            bc.max_wave = n;
        }
        bc
    });
    let config = ServeConfig {
        addr,
        workers: args.workers,
        debug: *system.config(),
        shared_cache: args.shared_cache.then(SharedCacheConfig::default),
        batching,
        ..ServeConfig::default()
    };
    let server = Server::start(
        system.shared_parts(),
        TenantRegistry::new(TenantPolicy::default()),
        config,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot serve on {addr}: {e}");
        std::process::exit(1);
    });
    // The resolved address on its own stdout line, so scripts (and the
    // check.sh smoke step) can scrape it even when port 0 was requested.
    println!("kwserve listening on {}", server.addr());
    eprintln!(
        "{} tuples, {} lattice nodes, {} workers; press Enter (or close stdin) to stop",
        system.database().total_rows(),
        system.lattice().node_count(),
        args.workers
    );
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    eprintln!("shutting down...");
    let metrics = server.shutdown();
    println!("{}", metrics.to_json());
}

/// `:cache` against a server: renders the process-wide shared store's wire
/// gauges (`shared_cache_*` in the Metrics JSON — SERVING.md). All-zero
/// gauges are indistinguishable from a server running without
/// [`kwserve::ServeConfig::shared_cache`], so say so.
fn show_shared_cache(json: &str) {
    let field = |key: &str| -> u64 {
        let tag = format!("\"{key}\":");
        json.find(&tag)
            .and_then(|i| {
                let rest = &json[i + tag.len()..];
                let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
                rest[..end].parse().ok()
            })
            .unwrap_or(0)
    };
    let bytes = field("shared_cache_bytes");
    let evictions = field("shared_cache_evictions");
    let hits = field("shared_cache_hits");
    let misses = field("shared_cache_misses");
    if bytes == 0 && evictions == 0 && hits == 0 && misses == 0 {
        println!(
            "shared cache: no activity (server runs without `shared_cache`, or nothing cached yet)"
        );
        return;
    }
    let lookups = hits + misses;
    let rate = if lookups > 0 { hits as f64 * 100.0 / lookups as f64 } else { 0.0 };
    println!(
        "shared cache: {bytes} bytes resident, {hits} hits / {misses} misses \
         ({rate:.1}% hit rate), {evictions} evicted"
    );
    println!("(process-wide across every tenant; the gauges refresh on each :metrics/:cache)");
}

/// `:batch` against a server: renders the cross-session wave-exchange gauges
/// (`batch_*` in the Metrics JSON — SERVING.md). All-zero gauges are
/// indistinguishable from a server running without
/// [`kwserve::ServeConfig::batching`], so say so.
fn show_batching(json: &str) {
    let field = |key: &str| -> u64 {
        let tag = format!("\"{key}\":");
        json.find(&tag)
            .and_then(|i| {
                let rest = &json[i + tag.len()..];
                let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
                rest[..end].parse().ok()
            })
            .unwrap_or(0)
    };
    let merged = field("batch_merged_waves");
    let ratio = field("batch_coalesce_ratio");
    if merged == 0 && ratio == 0 {
        println!(
            "batching: no merged waves (server runs without `batching`, or traffic \
             never overlapped)"
        );
        return;
    }
    println!(
        "batching: {merged} merged waves, {:.1}% of submitted probes coalesced away",
        ratio as f64 / 10.0
    );
    println!("(process-wide across every tenant; the gauges refresh on each :metrics/:batch)");
}

/// `--connect` mode: the REPL as one client session against a live server.
///
/// Uses a [`ResilientClient`], so transient faults, shutdowns and overload
/// refusals are retried with capped-exponential backoff instead of killing
/// the REPL; `:metrics` appends the client-observed reconnect count next to
/// the server-side record, and `:cache` renders the shared store's gauges.
fn client_repl(addr: SocketAddr, tenant: &str) {
    let policy = ReconnectPolicy { io_timeout: Some(Duration::from_secs(10)), ..ReconnectPolicy::default() };
    let mut client = ResilientClient::connect(addr, tenant, policy).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "connected to {addr} as tenant `{tenant}` (session {}); :quit to exit",
        client.session_id().expect("connect() leaves a live session")
    );
    let mut strategy: Option<StrategyKind> = None;
    let stdin = std::io::stdin();
    loop {
        let name = strategy.map_or("server", |s| s.name());
        print!("kws@{name}> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("strategy") => match parts.next() {
                    Some(arg) if arg.eq_ignore_ascii_case("default") => {
                        strategy = None;
                        println!("strategy = server default");
                    }
                    Some(arg) => match parse_strategy(arg) {
                        Some(s) => {
                            strategy = Some(s);
                            println!("strategy = {} (per request)", s.name());
                        }
                        None => println!("usage: :strategy BU|TD|BUWR|TDWR|SBH|BRUTE|default"),
                    },
                    None => println!("usage: :strategy BU|TD|BUWR|TDWR|SBH|BRUTE|default"),
                },
                Some("metrics") => match client.metrics_json() {
                    Ok(json) => {
                        println!("{json}");
                        // The server cannot observe reconnections (each one
                        // is just a new session to it) — report them from
                        // the client side, where they are counted.
                        println!("{{\"client\":{{\"reconnects\":{}}}}}", client.reconnects());
                    }
                    Err(e) => println!("error: {e}"),
                },
                Some("cache") => match client.metrics_json() {
                    Ok(json) => show_shared_cache(&json),
                    Err(e) => println!("error: {e}"),
                },
                Some("batch") => match client.metrics_json() {
                    Ok(json) => show_batching(&json),
                    Err(e) => println!("error: {e}"),
                },
                Some("epoch") => match client.epoch() {
                    // The session's local pin: every report of this session
                    // reflects exactly this database write epoch.
                    Some(epoch) => println!(
                        "server snapshot at write epoch {epoch} (session {}); \
                         reports from other epochs are not comparable",
                        client.session_id().unwrap_or(0)
                    ),
                    None => println!("no live session (reconnect pending)"),
                },
                Some("lattice") | Some("budget") | Some("chaos") | Some("mutate") => {
                    println!(
                        "local-only command; the server holds an immutable snapshot \
                         and budgets are set per tenant"
                    )
                }
                _ => println!(
                    "commands: :strategy <name>|default, :metrics, :cache, :batch, :epoch, :quit"
                ),
            }
            continue;
        }
        match client.debug_with_strategy(line, strategy) {
            Ok(wire) => {
                print!("{}", wire.report);
                println!(
                    "[{} answers, {} non-answers, {} MPANs; {}served in {:.2} ms]",
                    wire.report.answer_count(),
                    wire.report.non_answer_count(),
                    wire.report.mpan_count(),
                    if wire.degraded { "DEGRADED, " } else { "" },
                    wire.server_ns as f64 / 1e6,
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
    let _ = client.close();
}

fn main() {
    let args = parse_args();
    let max_level = args.max_level.unwrap_or(5);
    if let Some(addr) = args.connect {
        client_repl(addr, &args.tenant);
        return;
    }
    if let Some(addr) = args.listen {
        serve_mode(&args, addr, max_level);
        return;
    }
    eprintln!("building system (scale {:?}, level {max_level})...", args.scale);
    let mut mdb = build_mutable_system(args.scale, args.seed, max_level);
    mdb.share_eval_cache(None);
    let base_config = mutable_session_config(max_level);
    let mut session = Some(mdb.session(base_config).expect("valid experiment configuration"));
    eprintln!(
        "ready: {} tuples, lattice {} nodes. Try `DeRose VLDB` or `Widom Trio`; :quit to exit.",
        mdb.database().total_rows(),
        session.as_ref().expect("just built").lattice().node_count()
    );

    let mut strategy = StrategyKind::ScoreBasedHeuristic;
    let mut cache_on = false;
    let mut budget: Option<ProbeBudget> = None;
    let mut chaos: Option<FaultConfig> = None;
    let mut last: Option<LastRun> = None;
    let stdin = std::io::stdin();
    loop {
        print!("kws[{}]> ", strategy.name());
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let mut parts = rest.split_whitespace();
            let system = session.as_mut().expect("session is live between commands");
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("strategy") => match parts.next().and_then(parse_strategy) {
                    Some(s) => {
                        strategy = s;
                        println!("strategy = {}", strategy.name());
                    }
                    None => println!("usage: :strategy BU|TD|BUWR|TDWR|SBH|BRUTE"),
                },
                Some("metrics") => match &last {
                    Some(run) => show_metrics(system, run, &args, max_level),
                    None => println!("no query run yet — type a keyword query first"),
                },
                Some("lattice") => show_lattice(system),
                Some("epoch") => show_epoch(&mdb),
                Some("mutate") => {
                    let margs: Vec<String> = parts.map(str::to_owned).collect();
                    // Quiesce: the REPL's session is the only snapshot
                    // holder; drop it so the write path has exclusivity,
                    // then rebuild over the new epoch (O(1)) with the
                    // session knobs reapplied. The evaluation cache lives
                    // in the shared store, so surviving (clean) entries
                    // stay warm across the write.
                    drop(session.take());
                    println!("{}", apply_mutation(&mut mdb, &margs));
                    let mut s =
                        mdb.session(base_config).expect("config still matches the lattice");
                    s.set_eval_cache(cache_on);
                    if let Some(b) = budget {
                        s.set_budget(b);
                    }
                    s.set_chaos(chaos);
                    session = Some(s);
                }
                Some("cache") => match parts.next() {
                    None => show_cache(system, cache_on, last.as_ref()),
                    Some(arg) if arg.eq_ignore_ascii_case("on") => {
                        cache_on = true;
                        system.set_eval_cache(true);
                        println!("evaluation cache on (shared store, epoch-invalidated)");
                    }
                    Some(arg) if arg.eq_ignore_ascii_case("off") => {
                        cache_on = false;
                        system.set_eval_cache(false);
                        println!("evaluation cache off (entries retained)");
                    }
                    Some(_) => println!("usage: :cache [on|off]"),
                },
                Some("budget") => match parse_budget(&mut parts) {
                    Some(b) => {
                        let label = if b.is_unlimited() { "unlimited" } else { "set" };
                        budget = Some(b);
                        system.set_budget(b);
                        println!("probe budget {label} (per interpretation)");
                    }
                    None => println!("usage: :budget PROBES [DEADLINE_MS]  |  :budget off"),
                },
                Some("chaos") => match parse_chaos(&mut parts) {
                    Some(c) => {
                        match &c {
                            Some(c) => println!(
                                "chaos on: seed={} transient={}‰ permanent={}‰ latency={}‰",
                                c.seed, c.transient_per_mille, c.permanent_per_mille, c.latency_per_mille
                            ),
                            None => println!("chaos off"),
                        }
                        chaos = c;
                        system.set_chaos(c);
                    }
                    None => println!("usage: :chaos SEED TRANSIENT‰ PERMANENT‰ [LATENCY‰]  |  :chaos off"),
                },
                _ => println!("commands: :strategy <name>, :metrics, :lattice, :epoch, :mutate ..., :cache [on|off], :budget ..., :chaos ..., :quit"),
            }
            continue;
        }
        if let Some(run) = handle(session.as_ref().expect("session is live"), strategy, line) {
            last = Some(run);
        }
    }
}
