//! Interactive keyword-search debugger over the synthetic DBLife database.
//!
//! A small REPL: type keyword queries, get the full answer/non-answer/MPAN
//! report; `:strategy BU|BUWR|TD|TDWR|SBH|BRUTE` switches the traversal,
//! `:metrics` dumps the probe counters and phase timing of the last query
//! (human table plus the stable [`kwdebug::metrics::MetricsSnapshot`] JSON),
//! `:lattice` prints the offline lattice's per-level node counts and the
//! byte breakdown of its resident arena ([`kwdebug::lattice::Lattice::memory_footprint`]),
//! `:budget N [MS]` caps probes (and optionally a deadline in milliseconds)
//! per interpretation, `:chaos SEED T P [L]` turns on deterministic fault
//! injection (per-mille transient/permanent/latency rates), `:budget off` /
//! `:chaos off` restore the defaults, `:cache on|off` toggles the
//! session-scoped cross-probe evaluation cache ([`kwdebug::evalcache`]) and
//! bare `:cache` shows its resident contents plus the last query's hit
//! counters, `:quit` exits. Useful for poking at
//! the system — including its degraded mode — the way the paper's intended
//! developer/SEO user would.
//!
//! Usage: `kws_repl [--scale S] [--max-level N]` (default small, N=5), then
//! e.g. `DeRose VLDB` at the prompt.

use std::io::{BufRead, Write};
use std::time::Duration;

use bench::{build_system, ExpArgs};
use kwdebug::budget::ProbeBudget;
use kwdebug::debugger::NonAnswerDebugger;
use kwdebug::metrics::MetricsSnapshot;
use kwdebug::report::DebugReport;
use kwdebug::traversal::StrategyKind;
use relengine::FaultConfig;

fn parse_strategy(name: &str) -> Option<StrategyKind> {
    match name.to_ascii_uppercase().as_str() {
        "BU" => Some(StrategyKind::BottomUp),
        "TD" => Some(StrategyKind::TopDown),
        "BUWR" => Some(StrategyKind::BottomUpWithReuse),
        "TDWR" => Some(StrategyKind::TopDownWithReuse),
        "SBH" => Some(StrategyKind::ScoreBasedHeuristic),
        "BRUTE" => Some(StrategyKind::BruteForce),
        _ => None,
    }
}

/// What `:metrics` reports on: the last successful query and its report.
struct LastRun {
    query: String,
    strategy: StrategyKind,
    report: DebugReport,
}

fn handle(system: &NonAnswerDebugger, strategy: StrategyKind, line: &str) -> Option<LastRun> {
    match system.debug_with_strategy(line, strategy) {
        Ok(report) => {
            print!("{report}");
            println!(
                "[{} answers, {} non-answers, {} MPANs; {} SQL queries in {:?}]",
                report.answer_count(),
                report.non_answer_count(),
                report.mpan_count(),
                report.sql_queries(),
                report.sql_time(),
            );
            Some(LastRun { query: line.to_owned(), strategy, report })
        }
        Err(e) => {
            println!("error: {e}");
            None
        }
    }
}

/// `:lattice` — per-level shape and resident-memory breakdown of the shared
/// offline lattice.
fn show_lattice(system: &NonAnswerDebugger) {
    let lattice = system.lattice();
    let fp = lattice.memory_footprint();
    println!(
        "offline lattice: {} nodes, {} levels (maxJoins {})",
        fp.nodes,
        lattice.level_count(),
        lattice.max_joins()
    );
    for level in 1..=lattice.level_count() {
        println!("  level {level:>2}  {:>8} nodes", lattice.level_nodes(level).len());
    }
    let kib = |b: usize| b as f64 / 1024.0;
    println!("resident arena:");
    println!("  networks (JNTS)   {:>10.1} KiB", kib(fp.jnts_bytes));
    println!("  adjacency CSR     {:>10.1} KiB", kib(fp.adjacency_bytes));
    println!("  postings index    {:>10.1} KiB", kib(fp.postings_bytes));
    println!("  levels/flags      {:>10.1} KiB", kib(fp.index_bytes));
    println!("  total             {:>10.1} KiB", kib(fp.total_bytes()));
    println!("workspace reuses so far: {}", system.workspace_reuses());
}

fn show_metrics(system: &NonAnswerDebugger, last: &LastRun, args: &ExpArgs, max_level: usize) {
    let p = last.report.probes();
    let t = &last.report.timing;
    println!("last query: {:?} under {}", last.query, last.strategy.name());
    println!("  probes executed   {}", p.probes_executed);
    println!("  probe time        {:?}", p.probe_time());
    println!("  tuples scanned    {}", p.tuples_scanned);
    println!("  memo hits         {}", p.memo_hits);
    println!("  R1 inferences     {}", p.r1_inferences);
    println!("  R2 inferences     {}", p.r2_inferences);
    println!("  reuse hits        {}", p.reuse_hits);
    println!(
        "  phases: mapping {:?}, pruning {:?}, traversal {:?} (sql {:?}), reporting {:?}, total {:?}",
        t.mapping, t.pruning, t.traversal, t.sql, t.reporting, t.total
    );
    let mut snap = MetricsSnapshot {
        experiment: "kws_repl".into(),
        query: last.query.clone(),
        strategy: last.strategy.name().into(),
        variant: String::new(),
        scale: format!("{:?}", args.scale).to_ascii_lowercase(),
        max_level: max_level as u64,
        interpretations: last.report.interpretations.len() as u64,
        lattice_bytes: system.lattice().memory_footprint().total_bytes() as u64,
        probes: p,
        phases: *t,
        prune: None,
        levels: Vec::new(),
    };
    if let Some(first) = last.report.interpretations.first() {
        let mut prune = first.prune_stats.clone();
        for i in &last.report.interpretations[1..] {
            let s = &i.prune_stats;
            prune.retained_phase1 += s.retained_phase1;
            prune.total_nodes += s.total_nodes;
            prune.mtn_count += s.mtn_count;
            prune.pruned_nodes += s.pruned_nodes;
            prune.mtn_descendants_total += s.mtn_descendants_total;
            prune.mtn_descendants_unique += s.mtn_descendants_unique;
        }
        snap.prune = Some(prune);
    }
    println!("{}", snap.to_json());
}

/// `:cache` — resident contents of the session evaluation cache and, when a
/// query has run, where its probing work went.
fn show_cache(system: &NonAnswerDebugger, enabled: bool, last: Option<&LastRun>) {
    let cache = system.eval_cache();
    println!(
        "evaluation cache: {} ({} selection entries, {} subtree value-sets, {} keywords, {} payload bytes)",
        if enabled { "on" } else { "off" },
        cache.selection_entries(),
        cache.subtree_entries(),
        cache.interned_keywords(),
        cache.bytes()
    );
    if let Some(run) = last {
        let p = run.report.probes();
        println!(
            "last query: {} selection hits, {} subtree hits, {} dead shortcuts, {} bytes added",
            p.selection_cache_hits,
            p.subtree_cache_hits,
            p.subtree_cache_dead_shortcuts,
            p.cache_bytes
        );
    }
    if !enabled {
        println!("(entries stay valid for the session; `:cache on` resumes using them)");
    }
}

/// Parses `:budget N [MS]` / `:budget off` into a probe budget.
fn parse_budget(parts: &mut std::str::SplitWhitespace<'_>) -> Option<ProbeBudget> {
    let first = parts.next()?;
    if first.eq_ignore_ascii_case("off") {
        return Some(ProbeBudget::unlimited());
    }
    let probes: u64 = first.parse().ok()?;
    let mut budget = ProbeBudget::probes(probes);
    if let Some(ms) = parts.next() {
        budget = budget.with_deadline(Duration::from_millis(ms.parse().ok()?));
    }
    Some(budget)
}

/// Parses `:chaos SEED T P [L]` / `:chaos off` into a fault config
/// (`None` = chaos off); per-mille rates as in [`FaultConfig`].
#[allow(clippy::option_option)]
fn parse_chaos(parts: &mut std::str::SplitWhitespace<'_>) -> Option<Option<FaultConfig>> {
    let first = parts.next()?;
    if first.eq_ignore_ascii_case("off") {
        return Some(None);
    }
    let seed: u64 = first.parse().ok()?;
    let transient: u32 = parts.next()?.parse().ok()?;
    let permanent: u32 = parts.next()?.parse().ok()?;
    let latency: u32 = match parts.next() {
        Some(l) => l.parse().ok()?,
        None => 0,
    };
    Some(Some(FaultConfig {
        seed,
        transient_per_mille: transient,
        permanent_per_mille: permanent,
        latency_per_mille: latency,
        latency: Duration::from_micros(100),
        fail_first_transient: 0,
    }))
}

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    eprintln!("building system (scale {:?}, level {max_level})...", args.scale);
    let mut system = build_system(args.scale, args.seed, max_level);
    eprintln!(
        "ready: {} tuples, lattice {} nodes. Try `DeRose VLDB` or `Widom Trio`; :quit to exit.",
        system.database().total_rows(),
        system.lattice().node_count()
    );

    let mut strategy = StrategyKind::ScoreBasedHeuristic;
    let mut cache_on = false;
    let mut last: Option<LastRun> = None;
    let stdin = std::io::stdin();
    loop {
        print!("kws[{}]> ", strategy.name());
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("strategy") => match parts.next().and_then(parse_strategy) {
                    Some(s) => {
                        strategy = s;
                        println!("strategy = {}", strategy.name());
                    }
                    None => println!("usage: :strategy BU|TD|BUWR|TDWR|SBH|BRUTE"),
                },
                Some("metrics") => match &last {
                    Some(run) => show_metrics(&system, run, &args, max_level),
                    None => println!("no query run yet — type a keyword query first"),
                },
                Some("lattice") => show_lattice(&system),
                Some("cache") => match parts.next() {
                    None => show_cache(&system, cache_on, last.as_ref()),
                    Some(arg) if arg.eq_ignore_ascii_case("on") => {
                        cache_on = true;
                        system.set_eval_cache(true);
                        println!("evaluation cache on (session-scoped)");
                    }
                    Some(arg) if arg.eq_ignore_ascii_case("off") => {
                        cache_on = false;
                        system.set_eval_cache(false);
                        println!("evaluation cache off (entries retained)");
                    }
                    Some(_) => println!("usage: :cache [on|off]"),
                },
                Some("budget") => match parse_budget(&mut parts) {
                    Some(budget) => {
                        let label = if budget.is_unlimited() { "unlimited" } else { "set" };
                        system.set_budget(budget);
                        println!("probe budget {label} (per interpretation)");
                    }
                    None => println!("usage: :budget PROBES [DEADLINE_MS]  |  :budget off"),
                },
                Some("chaos") => match parse_chaos(&mut parts) {
                    Some(chaos) => {
                        match &chaos {
                            Some(c) => println!(
                                "chaos on: seed={} transient={}‰ permanent={}‰ latency={}‰",
                                c.seed, c.transient_per_mille, c.permanent_per_mille, c.latency_per_mille
                            ),
                            None => println!("chaos off"),
                        }
                        system.set_chaos(chaos);
                    }
                    None => println!("usage: :chaos SEED TRANSIENT‰ PERMANENT‰ [LATENCY‰]  |  :chaos off"),
                },
                _ => println!("commands: :strategy <name>, :metrics, :lattice, :cache [on|off], :budget ..., :chaos ..., :quit"),
            }
            continue;
        }
        if let Some(run) = handle(&system, strategy, line) {
            last = Some(run);
        }
    }
}
