//! Extension experiment — cross-probe evaluation cache (EXPERIMENTS.md E15).
//!
//! A debug session asks many structurally overlapping probes: every probe of
//! an interpretation re-selects the same `(relation, keyword)` tuple sets,
//! and sibling networks share whole bound subtrees. The session-scoped
//! `kwdebug::evalcache` amortizes both — keyword selections are filtered
//! once and shared, and reduced cut value-sets from completed Yannakakis
//! passes let later probes prune (or dead-shortcut) shared subtrees.
//!
//! Three passes over the same workload measure the cache's life cycle:
//!
//! * `off`  — baseline, cache disabled;
//! * `cold` — cache enabled, empty: pays population on top of probing;
//! * `warm` — same session again: selections and value-sets all hit.
//!
//! Probe throughput is *verdicts per probing second*:
//! `(probes_executed + subtree_cache_dead_shortcuts + verdict_cache_hits) /
//! probe_time`. The numerator is pass-invariant (the equivalence contract —
//! see `tests/probe_cache_equivalence.rs`), so the ratio isolates the
//! probing work the cache removes. Target: warm ≥ 3× cold.
//!
//! Individual probes run in microseconds, so a single pass is at the mercy
//! of scheduler noise. The whole off/cold/warm cycle therefore repeats
//! [`REPS`] times — [`NonAnswerDebugger::reset_eval_cache`] restores a cold
//! cache between repetitions — and each pass is scored by its best (fastest)
//! repetition, the standard min-of-N treatment for shaving off noise.
//!
//! Usage: `exp_probe_cache [--scale S] [--max-level N] [--seed N]` (default
//! scale small, level 5). Emits one record per (query, pass) to
//! `results/BENCH_exp_probe_cache.json`; `phases.total_ns` carries the
//! measured wall-clock of the debug call, `probes` the session counters.

use std::time::Instant;

use bench::{build_system, emit_metrics, print_table, ExpArgs};
use datagen::paper_queries;
use kwdebug::debugger::NonAnswerDebugger;
use kwdebug::metrics::MetricsSnapshot;
use kwdebug::traversal::StrategyKind;

const STRATEGY: StrategyKind = StrategyKind::ScoreBasedHeuristic;
const QUERIES: usize = 4;
const REPS: usize = 15;

/// One (query, pass) measurement.
struct Row {
    query: String,
    pass: &'static str,
    rec: MetricsSnapshot,
}

/// Runs the workload once against `system`, tagging each record with `pass`.
fn run_pass(
    system: &NonAnswerDebugger,
    pass: &'static str,
    args: &ExpArgs,
    max_level: usize,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for q in paper_queries().iter().take(QUERIES) {
        let t0 = Instant::now();
        let report = system.debug_with_strategy(q.text, STRATEGY).expect("clean run");
        let wall = t0.elapsed();
        let mut rec = MetricsSnapshot {
            experiment: "exp_probe_cache".to_owned(),
            query: q.id.to_owned(),
            strategy: STRATEGY.to_string(),
            variant: pass.to_owned(),
            scale: args.scale.name().to_owned(),
            max_level: max_level as u64,
            interpretations: report.interpretations.len() as u64,
            lattice_bytes: 0,
            probes: report.probes(),
            phases: Default::default(),
            prune: None,
            levels: Vec::new(),
        };
        rec.phases.total = wall;
        rows.push(Row { query: q.id.to_owned(), pass, rec });
    }
    rows
}

/// Verdicts per probing second over a pass: the shortcut identity makes the
/// numerator equal across passes, so this is a like-for-like rate.
fn throughput(rows: &[Row]) -> f64 {
    let verdicts: u64 = rows
        .iter()
        .map(|r| {
            r.rec.probes.probes_executed
                + r.rec.probes.subtree_cache_dead_shortcuts
                + r.rec.probes.verdict_cache_hits
        })
        .sum();
    let ns: u64 = rows.iter().map(|r| r.rec.probes.probe_time_ns).sum();
    if ns == 0 {
        f64::INFINITY
    } else {
        verdicts as f64 * 1e9 / ns as f64
    }
}

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== Extension: cross-probe evaluation cache (scale {:?}, level {max_level}, {STRATEGY}) ==\n",
        args.scale
    );

    let mut system = build_system(args.scale, args.seed, max_level);
    let mut off_reps = Vec::new();
    let mut cold_reps = Vec::new();
    let mut warm_reps = Vec::new();
    for _ in 0..REPS {
        system.set_eval_cache(false);
        off_reps.push(run_pass(&system, "off", &args, max_level));
        system.reset_eval_cache();
        system.set_eval_cache(true);
        cold_reps.push(run_pass(&system, "cold", &args, max_level));
        warm_reps.push(run_pass(&system, "warm", &args, max_level));
    }
    // Verdict counts are pass- and repetition-invariant; the table, the
    // emitted records and the headline ratio all come from each pass's
    // fastest repetition.
    let best = |reps: &mut Vec<Vec<Row>>| {
        let idx = (0..reps.len())
            .max_by(|&a, &b| throughput(&reps[a]).total_cmp(&throughput(&reps[b])))
            .expect("REPS > 0");
        reps.swap_remove(idx)
    };
    let (off, cold, warm) = (best(&mut off_reps), best(&mut cold_reps), best(&mut warm_reps));
    let (t_off, t_cold, t_warm) = (throughput(&off), throughput(&cold), throughput(&warm));
    let cache = system.eval_cache();
    println!(
        "session cache: {} selection entries, {} subtree entries, {} verdicts, {} keywords, {} payload bytes\n",
        cache.selection_entries(),
        cache.subtree_entries(),
        cache.verdict_entries(),
        cache.interned_keywords(),
        cache.bytes()
    );

    let mut table = Vec::new();
    for r in off.iter().chain(&cold).chain(&warm) {
        let p = &r.rec.probes;
        table.push(vec![
            r.query.clone(),
            r.pass.to_string(),
            (p.probes_executed + p.subtree_cache_dead_shortcuts + p.verdict_cache_hits)
                .to_string(),
            p.subtree_cache_dead_shortcuts.to_string(),
            p.verdict_cache_hits.to_string(),
            p.selection_cache_hits.to_string(),
            p.subtree_cache_hits.to_string(),
            p.tuples_scanned.to_string(),
            format!("{:.2}", p.probe_time_ns as f64 / 1e6),
            format!("{:.2}", r.rec.phases.total.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        &[
            "query", "pass", "verdicts", "dead-sc", "vc-hit", "sel-hit", "sub-hit", "scanned",
            "probe ms", "wall ms",
        ],
        &table,
    );

    let ratio = t_warm / t_cold;
    println!(
        "\nprobe throughput (verdicts/s, best of {REPS}): off {t_off:.0}, cold {t_cold:.0}, warm {t_warm:.0}"
    );
    println!(
        "warm/cold speedup: {ratio:.2}x ({})",
        if ratio >= 3.0 { "target >=3x met" } else { "BELOW the 3x target" }
    );

    let records: Vec<MetricsSnapshot> =
        off.into_iter().chain(cold).chain(warm).map(|r| r.rec).collect();
    emit_metrics("exp_probe_cache", &records);
}
