//! Ablation — fixed `p_a = 0.5` vs statistics-estimated `p_a` (§2.5.3
//! future work, implemented in `kwdebug::estimate`).
//!
//! Runs SBH over the workload twice: once with the paper's fixed prior, once
//! with the per-interpretation estimate derived from row counts, join-key
//! distinct counts and keyword document frequencies. Reports executed-SQL
//! counts side by side; outputs are asserted identical.
//!
//! Usage: `exp_pa_estimate [--scale S] [--max-level N]` (default N=5).

use bench::{build_system, print_table, ExpArgs};
use datagen::paper_queries;
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::estimate::PaEstimator;
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== Ablation: SBH with fixed vs estimated p_a (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);

    let mut rows = Vec::new();
    for q in paper_queries() {
        let query = KeywordQuery::parse(q.text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        let mut fixed = 0u64;
        let mut estimated = 0u64;
        let mut pa_shown = String::from("-");
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(system.lattice(), interp);
            let est = PaEstimator::new(system.database(), system.index(), interp, &mapping.keywords);
            let pa = est.estimate_pa(system.lattice(), &pruned);
            pa_shown = format!("{pa:.2}");
            for (prior, counter) in [(0.5, &mut fixed), (pa, &mut estimated)] {
                let mut oracle = AlivenessOracle::new(
                    system.database(),
                    Some(system.index()),
                    interp,
                    &mapping.keywords,
                    false,
                );
                let out = traversal::run(
                    StrategyKind::ScoreBasedHeuristic,
                    system.lattice(),
                    &pruned,
                    &mut oracle,
                    prior,
                )
                .expect("SBH runs");
                *counter += out.sql_queries;
            }
        }
        rows.push(vec![
            q.id.to_string(),
            pa_shown,
            fixed.to_string(),
            estimated.to_string(),
            format!("{:+}", estimated as i64 - fixed as i64),
        ]);
    }
    print_table(&["query", "est_pa", "SBH@0.5", "SBH@est", "delta"], &rows);
    println!("\n(outputs are identical; only the greedy order — and thus query count — shifts)");
}
