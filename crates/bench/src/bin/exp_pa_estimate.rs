//! Ablation — fixed `p_a = 0.5` vs statistics-estimated vs online-observed
//! `p_a` (§2.5.3 future work, implemented in `kwdebug::estimate`).
//!
//! Runs SBH over the workload four ways: the paper's fixed prior, the
//! per-interpretation static estimate (row counts, join-key distinct counts,
//! keyword document frequencies), and the online per-level alive-rate
//! estimator ([`kwdebug::OnlinePa`]) twice — a first pass that starts at the
//! paper's prior and learns from its own executed verdicts, and a second
//! pass over the same workload with the estimator already warmed (the
//! cross-session steady state under the serving layer, DESIGN.md §12).
//! Reports executed-SQL counts side by side; outputs are asserted identical
//! by the library's equivalence tests — `p_a` only reorders the greedy
//! frontier.
//!
//! Usage: `exp_pa_estimate [--scale S] [--max-level N]` (default N=5).

use std::sync::Arc;

use bench::{build_system, print_table, ExpArgs};
use datagen::paper_queries;
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::estimate::{OnlinePa, PaEstimator};
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== Ablation: SBH with fixed vs estimated vs online p_a (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);

    // One estimator across the whole workload, exactly as `SharedParts`
    // shares it across a server's sessions: pass 1 warms it, pass 2 reads
    // the accumulated evidence.
    let online = Arc::new(OnlinePa::new());
    let run_online = |q: &datagen::WorkloadQuery, stats: &Arc<OnlinePa>| -> u64 {
        let query = KeywordQuery::parse(q.text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        let mut total = 0u64;
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(system.lattice(), interp);
            let prior = stats.estimate_pa(&pruned);
            let mut oracle = AlivenessOracle::new(
                system.database(),
                Some(system.index()),
                interp,
                &mapping.keywords,
                false,
            )
            .with_pa_stats(Arc::clone(stats));
            let out = traversal::run(
                StrategyKind::ScoreBasedHeuristic,
                system.lattice(),
                &pruned,
                &mut oracle,
                prior,
            )
            .expect("SBH runs");
            total += out.sql_queries;
        }
        total
    };

    let mut rows = Vec::new();
    for q in paper_queries() {
        let query = KeywordQuery::parse(q.text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        let mut fixed = 0u64;
        let mut estimated = 0u64;
        let mut pa_shown = String::from("-");
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(system.lattice(), interp);
            let est = PaEstimator::new(system.database(), system.index(), interp, &mapping.keywords);
            let pa = est.estimate_pa(system.lattice(), &pruned);
            pa_shown = format!("{pa:.2}");
            for (prior, counter) in [(0.5, &mut fixed), (pa, &mut estimated)] {
                let mut oracle = AlivenessOracle::new(
                    system.database(),
                    Some(system.index()),
                    interp,
                    &mapping.keywords,
                    false,
                );
                let out = traversal::run(
                    StrategyKind::ScoreBasedHeuristic,
                    system.lattice(),
                    &pruned,
                    &mut oracle,
                    prior,
                )
                .expect("SBH runs");
                *counter += out.sql_queries;
            }
        }
        let cold = run_online(&q, &online);
        rows.push((q, pa_shown, fixed, estimated, cold));
    }
    // Second pass: the estimator now carries every verdict of pass 1.
    let observations = online.observations();
    let mut table = Vec::new();
    for (q, pa_shown, fixed, estimated, cold) in rows {
        let warm = run_online(&q, &online);
        table.push(vec![
            q.id.to_string(),
            pa_shown,
            fixed.to_string(),
            estimated.to_string(),
            cold.to_string(),
            warm.to_string(),
            format!("{:+}", estimated as i64 - fixed as i64),
        ]);
    }
    print_table(
        &["query", "est_pa", "SBH@0.5", "SBH@est", "SBH@onl", "SBH@onl-warm", "delta"],
        &table,
    );
    println!(
        "\n(outputs are identical; only the greedy order — and thus query count — shifts.\n online estimator observed {observations} executed verdicts in pass 1; levels with\n no observations keep the paper's 0.5 prior via Laplace smoothing)"
    );
}
