//! Experiments E10/E11 — Figures 14 and 15: our approach vs RN vs RE.
//!
//! Per workload query: total SQL execution time (and query counts) for
//!
//! * **Ours** — the lattice pipeline with the score-based heuristic;
//! * **Return Nothing** — the developer re-submits every keyword subset and
//!   the plain KWS-S system executes all candidate networks of each;
//! * **Return Everything** — every descendant of every dead MTN is executed
//!   with no lattice inference and no cross-MTN sharing.
//!
//! Paper shape: our approach wins; the gap is largest on the three-keyword
//! queries (Q2, Q3, Q8, Q10) and grows with the lattice level (run with
//! `--max-level 7` for the Figure 15 variant).
//!
//! Usage: `exp_alternatives [--scale S] [--max-level N]` (default N=5,
//! matching Figure 14).

use bench::{build_system, print_table, run_query, run_re, run_rn, ExpArgs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== Figure {}: response time vs alternatives (scale {:?}, level {max_level}) ==\n",
        if max_level >= 7 { 15 } else { 14 },
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);

    let mut rows = Vec::new();
    for q in paper_queries() {
        let ours = run_query(&system, q.text, StrategyKind::ScoreBasedHeuristic)
            .expect("workload query runs");
        let rn = run_rn(&system, q.text).expect("RN baseline runs");
        let re = run_re(&system, q.text).expect("RE baseline runs");
        rows.push(vec![
            q.id.to_string(),
            bench::ms(ours.sql_time),
            bench::ms(rn.sql_time),
            bench::ms(re.sql_time),
            ours.sql_queries.to_string(),
            rn.sql_queries.to_string(),
            re.sql_queries.to_string(),
        ]);
    }
    print_table(
        &["query", "ours_ms", "RN_ms", "RE_ms", "ours_q", "RN_q", "RE_q"],
        &rows,
    );
}
