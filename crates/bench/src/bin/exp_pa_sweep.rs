//! Ablation — the SBH aliveness prior `p_a` (§2.5.3, future work).
//!
//! The paper fixes `p_a = 0.5` ("works surprisingly well") and leaves
//! lightweight estimation as future work. This sweep runs SBH across the
//! whole workload for `p_a ∈ {0.0, 0.1, …, 1.0}` and reports the total
//! number of SQL queries executed — `p_a = 0` makes SBH behave like an
//! R2-greedy (bets everything on nodes dying), `p_a = 1` like an R1-greedy.
//! A final `online` row replays the workload with the per-level
//! [`kwdebug::OnlinePa`] estimator (DESIGN.md §12) warming from its own
//! verdicts, placing the learned prior against the static grid.
//! Correctness is unaffected by `p_a` (asserted per run).
//!
//! Usage: `exp_pa_sweep [--scale S] [--max-level N]` (default N=5).

use std::sync::Arc;

use bench::{build_system, print_table, run_query, ExpArgs};
use datagen::paper_queries;
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::estimate::OnlinePa;
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!("== Ablation: SBH p_a sweep (scale {:?}, level {max_level}) ==\n", args.scale);
    let system = build_system(args.scale, args.seed, max_level);

    let mut rows = Vec::new();
    for pa10 in 0..=10u32 {
        let pa = f64::from(pa10) / 10.0;
        let mut total_queries = 0u64;
        for q in paper_queries() {
            let query = KeywordQuery::parse(q.text).expect("workload query parses");
            let mapping = map_keywords(&query, system.index());
            for interp in &mapping.interpretations {
                let pruned = PrunedLattice::build(system.lattice(), interp);
                let mut oracle = AlivenessOracle::new(
                    system.database(),
                    Some(system.index()),
                    interp,
                    &mapping.keywords,
                    false,
                );
                let out = traversal::run(
                    StrategyKind::ScoreBasedHeuristic,
                    system.lattice(),
                    &pruned,
                    &mut oracle,
                    pa,
                )
                .expect("SBH runs");
                total_queries += out.sql_queries;
            }
        }
        rows.push(vec![format!("{pa:.1}"), total_queries.to_string()]);
    }

    // The online estimator, warming across the same workload: each
    // interpretation's prior is the current per-level observed alive rate,
    // and every executed verdict feeds the next.
    let online = Arc::new(OnlinePa::new());
    let mut online_queries = 0u64;
    for q in paper_queries() {
        let query = KeywordQuery::parse(q.text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(system.lattice(), interp);
            let prior = online.estimate_pa(&pruned);
            let mut oracle = AlivenessOracle::new(
                system.database(),
                Some(system.index()),
                interp,
                &mapping.keywords,
                false,
            )
            .with_pa_stats(Arc::clone(&online));
            let out = traversal::run(
                StrategyKind::ScoreBasedHeuristic,
                system.lattice(),
                &pruned,
                &mut oracle,
                prior,
            )
            .expect("SBH runs");
            online_queries += out.sql_queries;
        }
    }
    rows.push(vec!["online".to_string(), online_queries.to_string()]);
    print_table(&["p_a", "total SQL queries (Q1-Q10)"], &rows);

    // Sanity: p_a does not change outputs, only costs.
    let a = run_query(&system, "DeRose VLDB", StrategyKind::ScoreBasedHeuristic)
        .expect("runs");
    let b = run_query(&system, "DeRose VLDB", StrategyKind::BruteForce).expect("runs");
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.non_answers, b.non_answers);
    println!("\n(outputs identical across the sweep; only query counts vary)");
}
