//! Experiment E12 — robustness extension: traversal under probe faults.
//!
//! Not a figure from the paper: it exercises the fault-tolerance layer the
//! paper's production setting would need. Per workload query and traversal
//! strategy, sweep the per-probe transient-fault rate (0/10/50/100 per
//! mille, deterministic seed) with the default retry policy, and report how
//! much of the classification survives: retries spent, probes abandoned,
//! and MTNs left `Unknown` in the partial report. Expected shape: at 0‰
//! every strategy matches the clean run byte for byte; as the rate grows,
//! retries absorb most faults and the `Unknown` count stays near zero until
//! retries themselves start failing.
//!
//! Usage: `exp_chaos [--scale S] [--max-level N] [--seed N]` (default N=5).
//! The injection seed is derived from `--seed` so runs are reproducible.

use bench::{build_system, emit_metrics, print_table, run_query_with, ExpArgs, RunKnobs};
use datagen::paper_queries;
use kwdebug::traversal::StrategyKind;
use relengine::FaultConfig;
use std::time::Duration;

/// Transient-fault rates swept, in probes-per-mille.
const RATES: [u32; 4] = [0, 10, 50, 100];

fn main() {
    let args = ExpArgs::parse();
    let max_level = args.max_level.unwrap_or(5);
    println!(
        "== E12: degraded-mode traversal under injected probe faults (scale {:?}, level {max_level}) ==\n",
        args.scale
    );
    let system = build_system(args.scale, args.seed, max_level);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for q in paper_queries() {
        for kind in StrategyKind::ALL {
            let mut row = vec![q.id.to_string(), kind.to_string()];
            for rate in RATES {
                let knobs = RunKnobs {
                    chaos: (rate > 0).then(|| FaultConfig {
                        seed: args.seed ^ u64::from(rate),
                        transient_per_mille: rate,
                        permanent_per_mille: rate / 10,
                        latency_per_mille: 0,
                        latency: Duration::ZERO,
                        fail_first_transient: 0,
                    }),
                    ..RunKnobs::default()
                };
                let agg = run_query_with(&system, q.text, kind, knobs)
                    .expect("chaos run degrades instead of failing");
                assert_eq!(
                    agg.probes.probes_executed, agg.sql_queries,
                    "probe accounting must hold under faults"
                );
                row.push(format!(
                    "{}/{}/{}",
                    agg.probes.retries, agg.probes.probes_abandoned, agg.unknowns
                ));
                let mut snap =
                    agg.snapshot("exp_chaos", q.id, &kind.to_string(), args.scale, max_level);
                snap.variant = format!("fault_pm={rate}");
                records.push(snap);
            }
            rows.push(row);
        }
    }

    let headers = ["query", "strategy", "0‰", "10‰", "50‰", "100‰"];
    println!("retries / probes abandoned / MTNs left unknown, per fault rate:");
    print_table(&headers, &rows);
    println!();
    emit_metrics("exp_chaos", &records);
}
