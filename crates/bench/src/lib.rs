//! Shared infrastructure for the experiment binaries and benches.
//!
//! Every table and figure of the paper's evaluation (§3) has a dedicated
//! binary under `src/bin/` (see `DESIGN.md` for the experiment index). They
//! all share the same setup path: generate the synthetic DBLife database at a
//! chosen scale, build the offline system (inverted index + lattice) at a
//! chosen `maxJoins`, then run the Table 2 workload through whatever
//! combination of traversal strategies and baselines the experiment needs.
//!
//! Command-line conventions (hand-rolled; every binary accepts):
//!
//! * `--scale tiny|small|medium|paper` — dataset size (default `small`);
//! * `--max-level N` — lattice levels, i.e. `maxJoins = N - 1` (binaries
//!   pick their own paper-matching defaults);
//! * `--seed N` — data generator seed (default 7).

pub mod harness;

use std::time::Duration;

use datagen::{generate_dblife, DblifeConfig};
use kwdebug::baseline::{run_return_everything, run_return_nothing, ReOutcome, RnOutcome};
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::budget::{ProbeBudget, RetryPolicy};
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::metrics::{MetricsSnapshot, PhaseTiming, ProbeCounters};
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::{PruneStats, PrunedLattice};
use kwdebug::traversal::{self, StrategyKind, TraversalOutcome};
use kwdebug::KwError;
use relengine::FaultConfig;

/// Dataset scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataScale {
    /// ~500 tuples.
    Tiny,
    /// ~4k tuples.
    Small,
    /// ~30k tuples.
    Medium,
    /// ~800k tuples, approximating the paper's snapshot.
    Paper,
}

impl DataScale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<DataScale> {
        match s {
            "tiny" => Some(DataScale::Tiny),
            "small" => Some(DataScale::Small),
            "medium" => Some(DataScale::Medium),
            "paper" => Some(DataScale::Paper),
            _ => None,
        }
    }

    /// The canonical scale name (inverse of [`DataScale::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            DataScale::Tiny => "tiny",
            DataScale::Small => "small",
            DataScale::Medium => "medium",
            DataScale::Paper => "paper",
        }
    }

    /// The generator configuration for this scale.
    pub fn config(self, seed: u64) -> DblifeConfig {
        let mut cfg = match self {
            DataScale::Tiny => DblifeConfig::tiny(),
            DataScale::Small => DblifeConfig::small(),
            DataScale::Medium => DblifeConfig::medium(),
            DataScale::Paper => DblifeConfig::paper_scale(),
        };
        cfg.seed = seed;
        cfg
    }
}

/// Parsed common command-line arguments.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Dataset scale.
    pub scale: DataScale,
    /// Lattice levels (`maxJoins + 1`); `None` means the binary's default.
    pub max_level: Option<usize>,
    /// Generator seed.
    pub seed: u64,
    /// Sustained multi-query throughput mode: run this many queries over one
    /// shared lattice (used by `exp_phase12`; ignored by other binaries).
    pub throughput: Option<usize>,
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> ExpArgs {
        let mut out =
            ExpArgs { scale: DataScale::Small, max_level: None, seed: 7, throughput: None };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| -> &str {
                args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    out.scale = DataScale::parse(value(i)).unwrap_or_else(|| {
                        eprintln!("unknown scale `{}` (tiny|small|medium|paper)", args[i + 1]);
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--max-level" => {
                    out.max_level = Some(value(i).parse().unwrap_or_else(|_| {
                        eprintln!("--max-level expects a number");
                        std::process::exit(2);
                    }));
                    i += 2;
                }
                "--seed" => {
                    out.seed = value(i).parse().unwrap_or_else(|_| {
                        eprintln!("--seed expects a number");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--throughput" => {
                    out.throughput = Some(value(i).parse().unwrap_or_else(|_| {
                        eprintln!("--throughput expects a number of queries");
                        std::process::exit(2);
                    }));
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale tiny|small|medium|paper  --max-level N  --seed N  \
                         --throughput N"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument `{other}`");
                    std::process::exit(2);
                }
            }
        }
        out
    }
}

/// Builds the full system (data + index + lattice) for an experiment.
pub fn build_system(scale: DataScale, seed: u64, max_level: usize) -> NonAnswerDebugger {
    let db = generate_dblife(&scale.config(seed));
    NonAnswerDebugger::new(
        db,
        DebugConfig {
            max_joins: max_level.saturating_sub(1),
            sample_limit: 0,
            ..DebugConfig::default()
        },
    )
    .expect("valid experiment configuration")
}

/// The session configuration matching [`build_system`], for sessions built
/// over a [`build_mutable_system`] coordinator.
pub fn mutable_session_config(max_level: usize) -> DebugConfig {
    DebugConfig {
        max_joins: max_level.saturating_sub(1),
        sample_limit: 0,
        ..DebugConfig::default()
    }
}

/// Builds the full system under the single-writer mutable coordinator
/// ([`kwdebug::MutableDatabase`]): same data, index and lattice as
/// [`build_system`], but writable between debug sessions — the substrate of
/// the mutation experiments (E19) and the REPL's `:mutate`.
pub fn build_mutable_system(
    scale: DataScale,
    seed: u64,
    max_level: usize,
) -> kwdebug::MutableDatabase {
    let db = generate_dblife(&scale.config(seed));
    kwdebug::MutableDatabase::new(db, max_level.saturating_sub(1))
        .expect("valid experiment configuration")
}

/// Aggregate of one query's Phase 1-3 run under one strategy, summed over
/// interpretations.
#[derive(Debug, Clone, Default)]
pub struct QueryAggregate {
    /// Interpretations explored.
    pub interpretations: usize,
    /// Answer queries (alive MTNs).
    pub answers: usize,
    /// Non-answer queries (dead MTNs).
    pub non_answers: usize,
    /// MPANs reported (per dead MTN, with cross-MTN duplicates).
    pub mpans: usize,
    /// Distinct MPAN nodes (per interpretation, summed).
    pub mpans_unique: usize,
    /// SQL queries executed by the traversal.
    pub sql_queries: u64,
    /// Wall time spent executing SQL.
    pub sql_time: Duration,
    /// Phase 1/2 statistics summed over interpretations.
    pub prune: PruneStats,
    /// Keyword-to-schema mapping time.
    pub mapping_time: Duration,
    /// Probe/inference counters summed over interpretations
    /// (`probes.probes_executed` always equals `sql_queries`).
    pub probes: ProbeCounters,
    /// Per-phase wall-clock breakdown summed over interpretations.
    pub phases: PhaseTiming,
    /// MTNs left `Unknown` by degraded (chaos/budget) runs; 0 on clean runs.
    pub unknowns: usize,
}

impl QueryAggregate {
    /// Total MTNs.
    pub fn mtns(&self) -> usize {
        self.answers + self.non_answers
    }

    /// Converts this aggregate into a machine-readable metrics record (see
    /// [`kwdebug::metrics::MetricsSnapshot`]).
    pub fn snapshot(
        &self,
        experiment: &str,
        query: &str,
        strategy: &str,
        scale: DataScale,
        max_level: usize,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            experiment: experiment.to_owned(),
            query: query.to_owned(),
            strategy: strategy.to_owned(),
            variant: String::new(),
            scale: scale.name().to_owned(),
            max_level: max_level as u64,
            interpretations: self.interpretations as u64,
            lattice_bytes: 0,
            probes: self.probes,
            phases: self.phases,
            prune: Some(self.prune.clone()),
            levels: Vec::new(),
        }
    }
}

/// Writes newline-delimited metrics records to `results/BENCH_<experiment>.json`
/// via the shared writer ([`harness::write_records`]), echoing each JSON line
/// to stdout (prefixed `BENCH_JSON `).
pub fn emit_metrics(experiment: &str, records: &[MetricsSnapshot]) {
    let lines: Vec<String> = records.iter().map(MetricsSnapshot::to_json).collect();
    harness::write_records(experiment, &lines);
}

/// Robustness knobs for [`run_query_with`]: deterministic fault injection,
/// a per-interpretation probe budget, and the transient-retry policy.
/// `Default` reproduces [`run_query`] exactly (no chaos, unlimited budget).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunKnobs {
    /// Deterministic fault injection, when `Some`.
    pub chaos: Option<FaultConfig>,
    /// Per-interpretation probe budget.
    pub budget: Option<ProbeBudget>,
    /// Transient-failure retry policy (`None` = oracle default).
    pub retry: Option<RetryPolicy>,
}

/// Runs one workload query under one strategy against a prepared system,
/// without report sampling, and aggregates over interpretations.
pub fn run_query(
    system: &NonAnswerDebugger,
    text: &str,
    strategy: StrategyKind,
) -> Result<QueryAggregate, KwError> {
    run_query_with(system, text, strategy, RunKnobs::default())
}

/// [`run_query`] with robustness knobs ([`RunKnobs`]): the chaos-sweep
/// experiment uses this to measure degraded-mode behavior per strategy.
pub fn run_query_with(
    system: &NonAnswerDebugger,
    text: &str,
    strategy: StrategyKind,
    knobs: RunKnobs,
) -> Result<QueryAggregate, KwError> {
    let mut agg = QueryAggregate::default();
    let query = KeywordQuery::parse(text)?;
    let t0 = std::time::Instant::now();
    let mapping = map_keywords(&query, system.index());
    agg.mapping_time = t0.elapsed();
    agg.phases.mapping = agg.mapping_time;
    for interp in &mapping.interpretations {
        agg.interpretations += 1;
        let prune_start = std::time::Instant::now();
        let pruned = PrunedLattice::build(system.lattice(), interp);
        agg.phases.pruning += prune_start.elapsed();
        let mut oracle = AlivenessOracle::new(
            system.database(),
            Some(system.index()),
            interp,
            &mapping.keywords,
            false,
        );
        if let Some(budget) = knobs.budget {
            oracle = oracle.with_budget(budget);
        }
        if let Some(retry) = knobs.retry {
            oracle = oracle.with_retry(retry);
        }
        if let Some(chaos) = knobs.chaos {
            oracle = oracle.with_chaos(chaos);
        }
        let trav_start = std::time::Instant::now();
        let outcome = traversal::run(strategy, system.lattice(), &pruned, &mut oracle, 0.5)?;
        agg.phases.traversal += trav_start.elapsed();
        accumulate(&mut agg, &pruned, &outcome);
    }
    agg.phases.sql = agg.sql_time;
    agg.phases.total = t0.elapsed();
    Ok(agg)
}

/// Outcome of the sustained Phase 1–2 throughput mode (experiment E14):
/// `queries` keyword queries answered back to back over one shared lattice,
/// running keyword mapping plus the full Phase 1–2 pipeline
/// ([`PrunedLattice`] construction) for every interpretation, without
/// Phase 3 probing. This isolates exactly the per-query substrate cost the
/// compact-lattice refactor targets.
#[derive(Debug, Clone, Default)]
pub struct ThroughputReport {
    /// Queries executed.
    pub queries: usize,
    /// Interpretations pruned (Σ over queries).
    pub interpretations: usize,
    /// Total wall-clock for the whole run.
    pub wall: Duration,
    /// Time in keyword-to-schema mapping.
    pub mapping: Duration,
    /// Time in Phase 1–2 (`PrunedLattice` construction).
    pub pruning: Duration,
    /// Prune statistics summed over interpretations.
    pub prune: PruneStats,
    /// Posting-list entries scanned by Phase 1 (0 before the postings index).
    pub phase1_nodes_touched: u64,
    /// Number of `PrunedLattice` builds that reused pooled scratch.
    pub workspace_reuses: u64,
}

impl ThroughputReport {
    /// Queries per second over the whole run.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.queries as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Runs the sustained Phase 1–2 throughput mode: `n` queries drawn
/// round-robin from the Table 2 workload, mapped and pruned over the one
/// shared lattice in `system`. Returns per-phase totals; callers derive
/// queries/sec and per-query µs.
pub fn run_phase12_throughput(system: &NonAnswerDebugger, n: usize) -> ThroughputReport {
    let workload = datagen::paper_queries();
    let mut rep = ThroughputReport::default();
    let mut ws = kwdebug::workspace::QueryWorkspace::new();
    let t_all = std::time::Instant::now();
    for qi in 0..n {
        let q = &workload[qi % workload.len()];
        let t0 = std::time::Instant::now();
        let query = KeywordQuery::parse(q.text).expect("workload query parses");
        let mapping = map_keywords(&query, system.index());
        rep.mapping += t0.elapsed();
        for interp in &mapping.interpretations {
            let t1 = std::time::Instant::now();
            let pruned = PrunedLattice::build_with(system.lattice(), interp, &mut ws);
            rep.pruning += t1.elapsed();
            rep.interpretations += 1;
            rep.phase1_nodes_touched += pruned.phase1_nodes_touched();
            let s = pruned.stats();
            rep.prune.lattice_nodes = s.lattice_nodes;
            rep.prune.retained_phase1 += s.retained_phase1;
            rep.prune.total_nodes += s.total_nodes;
            rep.prune.mtn_count += s.mtn_count;
            rep.prune.pruned_nodes += s.pruned_nodes;
            rep.prune.mtn_descendants_total += s.mtn_descendants_total;
            rep.prune.mtn_descendants_unique += s.mtn_descendants_unique;
        }
        rep.queries += 1;
    }
    rep.wall = t_all.elapsed();
    // Every build after the first reused the warmed workspace buffers.
    rep.workspace_reuses = ws.builds().saturating_sub(1);
    rep
}

/// Runs the Return-Everything baseline for one query.
pub fn run_re(system: &NonAnswerDebugger, text: &str) -> Result<QueryAggregate, KwError> {
    let mut agg = QueryAggregate::default();
    let query = KeywordQuery::parse(text)?;
    let t0 = std::time::Instant::now();
    let mapping = map_keywords(&query, system.index());
    agg.mapping_time = t0.elapsed();
    agg.phases.mapping = agg.mapping_time;
    for interp in &mapping.interpretations {
        agg.interpretations += 1;
        let prune_start = std::time::Instant::now();
        let pruned = PrunedLattice::build(system.lattice(), interp);
        agg.phases.pruning += prune_start.elapsed();
        let mut oracle = AlivenessOracle::new(
            system.database(),
            Some(system.index()),
            interp,
            &mapping.keywords,
            false,
        );
        let trav_start = std::time::Instant::now();
        let ReOutcome { outcome } = run_return_everything(system.lattice(), &pruned, &mut oracle)?;
        agg.phases.traversal += trav_start.elapsed();
        accumulate(&mut agg, &pruned, &outcome);
    }
    agg.phases.sql = agg.sql_time;
    agg.phases.total = t0.elapsed();
    Ok(agg)
}

/// Runs the Return-Nothing baseline for one query.
pub fn run_rn(system: &NonAnswerDebugger, text: &str) -> Result<RnOutcome, KwError> {
    let query = KeywordQuery::parse(text)?;
    run_return_nothing(system.database(), system.index(), system.lattice(), &query)
}

fn accumulate(agg: &mut QueryAggregate, pruned: &PrunedLattice, outcome: &TraversalOutcome) {
    agg.answers += outcome.alive_mtns.len();
    agg.non_answers += outcome.dead_mtns.len();
    agg.mpans += outcome.mpan_total();
    agg.mpans_unique += outcome.mpan_unique();
    agg.sql_queries += outcome.sql_queries;
    agg.sql_time += outcome.sql_time;
    agg.probes.accumulate(outcome.probes);
    agg.unknowns += outcome.unknown_mtns.len();
    let s = pruned.stats();
    agg.prune.lattice_nodes = s.lattice_nodes;
    agg.prune.retained_phase1 += s.retained_phase1;
    agg.prune.total_nodes += s.total_nodes;
    agg.prune.mtn_count += s.mtn_count;
    agg.prune.pruned_nodes += s.pruned_nodes;
    agg.prune.mtn_descendants_total += s.mtn_descendants_total;
    agg.prune.mtn_descendants_unique += s.mtn_descendants_unique;
}

/// Renders a text table with right-aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("{}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(DataScale::parse("tiny"), Some(DataScale::Tiny));
        assert_eq!(DataScale::parse("paper"), Some(DataScale::Paper));
        assert_eq!(DataScale::parse("huge"), None);
    }

    #[test]
    fn run_query_tiny_end_to_end() {
        let sys = build_system(DataScale::Tiny, 7, 3);
        let agg = run_query(&sys, "Widom Trio", StrategyKind::ScoreBasedHeuristic).unwrap();
        assert!(agg.interpretations >= 1);
        // Widom authors the Trio paper: at least one answer at level 3.
        assert!(agg.answers >= 1, "{agg:?}");
    }

    #[test]
    fn baselines_run() {
        let sys = build_system(DataScale::Tiny, 7, 3);
        let re = run_re(&sys, "DeRose VLDB").unwrap();
        let rn = run_rn(&sys, "DeRose VLDB").unwrap();
        assert!(re.sql_queries > 0);
        assert_eq!(rn.submissions, 3); // full + two singletons
        assert!(rn.sql_queries > 0);
    }
}
