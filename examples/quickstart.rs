//! Quickstart: debug a non-answer on a four-table product catalog.
//!
//! Builds a small store database, asks the keyword query "saffron candle"
//! (which has no answers), and prints the full debug report: the dead
//! structured queries and, for each, the maximal alive sub-queries that
//! explain *why* nothing matched.
//!
//! Run with: `cargo run --example quickstart`

use kws_nonanswer_debug::kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kws_nonanswer_debug::kwdebug::traversal::StrategyKind;
use kws_nonanswer_debug::relengine::{DataType, DatabaseBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A store: product types and colored items referencing them.
    let mut b = DatabaseBuilder::new();
    b.table("ptype")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .primary_key("id");
    b.table("color")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id")?;
    b.foreign_key("item", "color_id", "color", "id")?;
    let mut db = b.finish()?;

    for (id, name) in [(1, "candle"), (2, "oil")] {
        db.insert_values("ptype", vec![Value::Int(id), Value::text(name)])?;
    }
    for (id, name) in [(1, "saffron"), (2, "red")] {
        db.insert_values("color", vec![Value::Int(id), Value::text(name)])?;
    }
    // The store carries candles (red) and saffron things (oil) — but no
    // saffron candle.
    for (id, name, pt, c) in
        [(1, "pillar wax", 1, 2), (2, "fragrant drops", 2, 1), (3, "tea light", 1, 2)]
    {
        db.insert_values(
            "item",
            vec![Value::Int(id), Value::text(name), Value::Int(pt), Value::Int(c)],
        )?;
    }

    // Offline setup: inverted index + query lattice up to 2 joins.
    let debugger = NonAnswerDebugger::new(
        db,
        DebugConfig {
            max_joins: 2,
            strategy: StrategyKind::ScoreBasedHeuristic,
            ..DebugConfig::default()
        },
    )?;

    // Online: the dreaded empty query, explained.
    let report = debugger.debug("saffron candle")?;
    println!("{report}");

    assert_eq!(report.answer_count(), 0, "this query is a non-answer");
    assert!(report.non_answer_count() > 0);
    println!(
        "debugging cost: {} SQL queries in {:?}",
        report.sql_queries(),
        report.sql_time()
    );
    Ok(())
}
