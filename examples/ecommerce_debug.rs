//! The paper's running example (Example 1, Figure 2), end to end.
//!
//! The keyword query **"saffron scented candle"** over the product database
//! maps — among other interpretations — to two structured queries:
//!
//! * `q1 = P_candle ⋈ I_scented ⋈ C_saffron` ("scented candles whose color
//!   is saffron"), and
//! * `q2 = P_candle ⋈ I_scented ⋈ A_saffron` ("scented candles whose scent
//!   is saffron").
//!
//! Both are non-answers. The system reports their maximal alive sub-queries:
//! for q1 `P_candle ⋈ I_scented` and `C_saffron`; for q2
//! `P_candle ⋈ I_scented` and `I_scented ⋈ A_saffron` — telling the
//! developer/SEO person that the store *does* carry scented candles and
//! saffron-scented products, so e.g. adding "saffron" as a synonym of
//! "yellow" would rescue the query.
//!
//! Run with: `cargo run --example ecommerce_debug`

use kws_nonanswer_debug::datagen::product_database;
use kws_nonanswer_debug::kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kws_nonanswer_debug::kwdebug::traversal::StrategyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = product_database();
    println!(
        "Figure 2 product database: {} tables, {} tuples\n",
        db.table_count(),
        db.total_rows()
    );

    let debugger = NonAnswerDebugger::new(
        db,
        DebugConfig {
            max_joins: 2,
            strategy: StrategyKind::ScoreBasedHeuristic,
            sample_limit: 2,
            ..DebugConfig::default()
        },
    )?;

    let report = debugger.debug("saffron scented candle")?;
    println!("{report}");

    // The paper's two focus queries are the (color, item, ptype) and the
    // (attribute, item, ptype) interpretations; both must be dead.
    let q1 = report
        .interpretations
        .iter()
        .find(|i| i.keyword_tables.iter().any(|(k, t)| k == "saffron" && t == "color"))
        .expect("q1 interpretation exists");
    let q2 = report
        .interpretations
        .iter()
        .find(|i| i.keyword_tables.iter().any(|(k, t)| k == "saffron" && t == "attribute"))
        .expect("q2 interpretation exists");
    assert!(q1.answers.is_empty() && !q1.non_answers.is_empty());
    assert!(q2.answers.is_empty() && !q2.non_answers.is_empty());
    println!(
        "=> as in the paper: q1 explained by {} sub-queries, q2 by {}",
        q1.non_answers[0].mpans.len(),
        q2.non_answers[0].mpans.len()
    );
    Ok(())
}
