//! Interactive debugging with injected knowledge and root-cause diagnosis.
//!
//! Demonstrates the extensions built on top of the paper's batch pipeline:
//!
//! 1. a [`DebugSession`] that *suggests* the next most informative sub-query
//!    (SBH scoring) and accepts externally injected verdicts — here the
//!    developer "already knows" products exist, saving executions;
//! 2. [`diagnose`]: the minimal dead sub-queries (the dual of MPANs) with
//!    actionable repair hints — the "add saffron as a synonym of yellow"
//!    step from the paper's Example 1;
//! 3. statistics-estimated `p_a` instead of the fixed 0.5.
//!
//! Run with: `cargo run --example interactive_diagnosis`

use kws_nonanswer_debug::datagen::product_database;
use kws_nonanswer_debug::kwdebug::binding::{map_keywords, KeywordQuery};
use kws_nonanswer_debug::kwdebug::diagnose::diagnose;
use kws_nonanswer_debug::kwdebug::estimate::PaEstimator;
use kws_nonanswer_debug::kwdebug::lattice::Lattice;
use kws_nonanswer_debug::kwdebug::oracle::AlivenessOracle;
use kws_nonanswer_debug::kwdebug::prune::PrunedLattice;
use kws_nonanswer_debug::kwdebug::session::{DebugSession, StepOutcome};
use kws_nonanswer_debug::kwdebug::SchemaGraph;
use kws_nonanswer_debug::textindex::InvertedIndex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = product_database();
    let index = InvertedIndex::build(&db);
    let graph = SchemaGraph::new(&db);
    let lattice = Lattice::build(&db, &graph, 2);

    let query = KeywordQuery::parse("saffron scented candle")?;
    let mapping = map_keywords(&query, &index);
    // The paper's q1: saffron as a color.
    let interp = mapping
        .interpretations
        .iter()
        .find(|i| {
            i.tables()
                == [
                    db.table_id("color").expect("schema"),
                    db.table_id("item").expect("schema"),
                    db.table_id("ptype").expect("schema"),
                ]
        })
        .expect("q1 interpretation exists");

    let pruned = PrunedLattice::build(&lattice, interp);
    println!(
        "q1 sub-lattice: {} nodes, {} candidate network(s)",
        pruned.len(),
        pruned.mtns().len()
    );

    // Estimate the aliveness prior from catalog + index statistics.
    let estimator = PaEstimator::new(&db, &index, interp, &mapping.keywords);
    let pa = estimator.estimate_pa(&lattice, &pruned);
    println!("estimated p_a = {pa:.2} (paper default: 0.50)\n");

    let mut oracle = AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
    let mut session = DebugSession::new(&lattice, pruned, pa);

    // The developer knows the store sells scented candles; inject it.
    // Find the P_candle ⋈ I_scented node: level 2, mentioning both keywords.
    let known_alive = (0..session.pruned().len()).find(|&i| {
        let sql = oracle.sql(session.pruned().jnts(&lattice, i)).expect("renders");
        session.pruned().level(i) == 2 && sql.contains("%candle%") && sql.contains("%scented%")
    });
    if let Some(n) = known_alive {
        session.assert_alive(n)?;
        println!("injected developer knowledge: scented candles exist (node {n})");
    }

    // Let the session drive the rest, narrating each suggestion.
    while let StepOutcome::Probed(node, alive) = session.step(&mut oracle)? {
        let sql = oracle.sql(session.pruned().jnts(&lattice, node))?;
        println!("  executed [{}] {}", if alive { "ALIVE" } else { "DEAD " }, sql);
    }
    let outcome = session.outcome().expect("session completed");
    println!(
        "\nclassified {} nodes with {} SQL queries ({} injected verdicts)",
        session.pruned().len(),
        session.executed(),
        session.injected()
    );

    // Diagnose each non-answer.
    for (&m, mpans) in outcome.dead_mtns.iter().zip(&outcome.mpans) {
        let sql = oracle.sql(session.pruned().jnts(&lattice, m))?;
        println!("\nnon-answer: {sql}");
        println!("  still works ({} maximal alive sub-queries):", mpans.len());
        for &p in mpans {
            println!("    {}", oracle.sql(session.pruned().jnts(&lattice, p))?);
        }
        println!("  root causes:");
        for d in diagnose(&lattice, session.pruned(), session.statuses(), m, &oracle)? {
            println!("    {d}");
        }
    }
    Ok(())
}
