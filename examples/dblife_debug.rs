//! Debugging the DBLife workload: why does "DeRose VLDB" return nothing?
//!
//! Generates the synthetic DBLife database (where, by construction, no
//! DeRose-authored publication appears in VLDB) and debugs the paper's Q4.
//! The report shows the dead candidate networks — e.g. "a DeRose publication
//! published in VLDB" — together with the alive sub-queries proving that
//! DeRose publishes and that VLDB has publications, plus higher-level
//! networks (through co-authors or citations) that *are* alive.
//!
//! Run with: `cargo run --release --example dblife_debug`

use kws_nonanswer_debug::datagen::{generate_dblife, DblifeConfig};
use kws_nonanswer_debug::kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kws_nonanswer_debug::kwdebug::traversal::StrategyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate_dblife(&DblifeConfig::small());
    println!(
        "synthetic DBLife: {} tables, {} tuples",
        db.table_count(),
        db.total_rows()
    );

    let debugger = NonAnswerDebugger::new(
        db,
        DebugConfig {
            max_joins: 4,
            strategy: StrategyKind::ScoreBasedHeuristic,
            sample_limit: 1,
            ..DebugConfig::default()
        },
    )?;
    println!(
        "offline lattice: {} nodes across {} levels\n",
        debugger.lattice().node_count(),
        debugger.lattice().level_count()
    );

    for query in ["DeRose VLDB", "DeWitt tutorial"] {
        println!("──────── debugging {query:?} ────────");
        let report = debugger.debug(query)?;
        println!("{report}");
        println!(
            "answers: {}, non-answers: {}, SQL queries: {}\n",
            report.answer_count(),
            report.non_answer_count(),
            report.sql_queries()
        );
    }
    Ok(())
}
