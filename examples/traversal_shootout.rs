//! Compare all five traversal strategies on one query.
//!
//! Runs the paper's Q3 ("Agrawal Chaudhuri Das") through BU, BUWR, TD, TDWR
//! and SBH over the same offline lattice, verifying they agree on the output
//! while differing — often dramatically — in how many SQL queries they
//! execute. The probe/inference columns show *why* they differ: the
//! with-reuse variants convert probes into reuse hits, SBH converts them
//! into R1/R2 inferences. This is Figures 11/12 in miniature.
//!
//! Run with: `cargo run --release --example traversal_shootout`

use kws_nonanswer_debug::datagen::{generate_dblife, DblifeConfig};
use kws_nonanswer_debug::kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kws_nonanswer_debug::kwdebug::mutable::MutableDatabase;
use kws_nonanswer_debug::kwdebug::traversal::StrategyKind;
use kws_nonanswer_debug::kwdebug::{BatchConfig, WaveExchange};
use kws_nonanswer_debug::relengine::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate_dblife(&DblifeConfig::small());
    let debugger = NonAnswerDebugger::new(
        db,
        DebugConfig { max_joins: 4, sample_limit: 0, ..DebugConfig::default() },
    )?;

    let query = "Agrawal Chaudhuri Das";
    println!("query: {query:?} (the paper's Q3)\n");
    println!(
        "{:<8} {:>7} {:>10} {:>6} {:>6} {:>6} {:>9} {:>8} {:>12}",
        "strategy", "probes", "time", "R1", "R2", "reuse", "scanned", "answers", "non-answers"
    );

    let mut reference: Option<(usize, usize, usize)> = None;
    let mut baseline_probes = Vec::new();
    for kind in StrategyKind::ALL {
        let report = debugger.debug_with_strategy(query, kind)?;
        let signature =
            (report.answer_count(), report.non_answer_count(), report.mpan_count());
        match &reference {
            None => reference = Some(signature),
            Some(r) => assert_eq!(*r, signature, "{kind} disagrees with the other strategies"),
        }
        let p = report.probes();
        assert_eq!(p.probes_executed, report.sql_queries(), "probe accounting must agree");
        baseline_probes.push(p.probes_executed);
        println!(
            "{:<8} {:>7} {:>10} {:>6} {:>6} {:>6} {:>9} {:>8} {:>12}",
            kind.name(),
            p.probes_executed,
            format!("{:.2?}", report.sql_time()),
            p.r1_inferences,
            p.r2_inferences,
            p.reuse_hits,
            p.tuples_scanned,
            signature.0,
            signature.1,
        );
    }
    println!("\nall strategies produced identical answers, non-answers and MPANs");
    println!("(probes == SQL queries executed; R1/R2 = statuses inferred by the rules)");

    // Same shootout with the session-scoped evaluation cache on: keyword
    // selections and reduced subtree value-sets carry across probes (and
    // across strategies — the session warms as the loop runs). The verdicts
    // are identical; the cache columns show where the probing work went.
    let db = generate_dblife(&DblifeConfig::small());
    let cached = NonAnswerDebugger::new(
        db,
        DebugConfig { max_joins: 4, sample_limit: 0, eval_cache: true, ..DebugConfig::default() },
    )?;
    println!("\nwith the cross-probe evaluation cache (one warming session):\n");
    println!(
        "{:<8} {:>7} {:>8} {:>7} {:>8} {:>8} {:>9} {:>10}",
        "strategy", "probes", "dead-sc", "vc-hit", "sel-hit", "sub-hit", "scanned", "time"
    );
    for (i, kind) in StrategyKind::ALL.into_iter().enumerate() {
        let report = cached.debug_with_strategy(query, kind)?;
        let signature =
            (report.answer_count(), report.non_answer_count(), report.mpan_count());
        assert_eq!(reference, Some(signature), "{kind}: cache changed the output");
        let p = report.probes();
        assert_eq!(
            p.probes_executed + p.subtree_cache_dead_shortcuts + p.verdict_cache_hits,
            baseline_probes[i],
            "{kind}: every skipped probe must be a cache shortcut"
        );
        println!(
            "{:<8} {:>7} {:>8} {:>7} {:>8} {:>8} {:>9} {:>10}",
            kind.name(),
            p.probes_executed,
            p.subtree_cache_dead_shortcuts,
            p.verdict_cache_hits,
            p.selection_cache_hits,
            p.subtree_cache_hits,
            p.tuples_scanned,
            format!("{:.2?}", report.sql_time()),
        );
    }
    let cache = cached.eval_cache();
    println!(
        "\nsame answers, fewer scans: {} selections + {} subtree value-sets + {} verdicts cached ({} bytes)",
        cache.selection_entries(),
        cache.subtree_entries(),
        cache.verdict_entries(),
        cache.bytes()
    );
    println!("(dead-sc = probes answered from an empty cached cut value-set; vc-hit = probes answered from a cached whole-network verdict; no SQL issued for either)");

    // Same shootout with two concurrent sessions merging their probe waves
    // through a cross-session exchange (kwdebug::batch): every pending probe
    // is executed by one session and coalesced away by the other, so the
    // per-session probe + coalesced columns must add back up to the
    // unbatched baseline — and the reports stay identical.
    let exchange = std::sync::Arc::new(WaveExchange::new(BatchConfig {
        window_us: 5_000,
        ..BatchConfig::default()
    }));
    println!("\nwith two sessions batching through one wave exchange:\n");
    println!(
        "{:<8} {:>9} {:>9} {:>7} {:>11} {:>11}",
        "strategy", "s1-probes", "s2-probes", "waves", "s1-coalesce", "s2-coalesce"
    );
    for (i, kind) in StrategyKind::ALL.into_iter().enumerate() {
        let barrier = std::sync::Barrier::new(2);
        let reports = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let exchange = exchange.clone();
                    let barrier = &barrier;
                    let parts = debugger.shared_parts();
                    s.spawn(move || {
                        let mut session = NonAnswerDebugger::from_shared(
                            parts,
                            DebugConfig {
                                max_joins: 4,
                                sample_limit: 0,
                                strategy: kind,
                                ..DebugConfig::default()
                            },
                        )
                        .expect("same substrate, same config");
                        session.set_wave_exchange(Some(exchange));
                        barrier.wait();
                        session.debug(query).expect("batched debug run")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("session thread")).collect::<Vec<_>>()
        });
        for report in &reports {
            let signature =
                (report.answer_count(), report.non_answer_count(), report.mpan_count());
            assert_eq!(reference, Some(signature), "{kind}: batching changed the output");
            let p = report.probes();
            assert_eq!(
                p.probes_executed + p.coalesced_probes,
                baseline_probes[i],
                "{kind}: every skipped probe must be a coalesced one"
            );
        }
        let (p1, p2) = (reports[0].probes(), reports[1].probes());
        println!(
            "{:<8} {:>9} {:>9} {:>7} {:>11} {:>11}",
            kind.name(),
            p1.probes_executed,
            p2.probes_executed,
            p1.batched_waves + p2.batched_waves,
            p1.coalesced_probes,
            p2.coalesced_probes,
        );
    }
    println!(
        "\n{} waves merged, {} of {} submitted probes answered by a peer's execution",
        exchange.merged_waves(),
        exchange.coalesced_probes(),
        exchange.submitted_probes()
    );
    println!("(each session is charged for every probe it would have run: executed + coalesced = unbatched probes)");

    // Same shootout against a *mutated* database: writes go through the
    // epoch-stamped coordinator, the inverted index is maintained by delta
    // postings, and the shared evaluation cache sheds only entries the
    // writes touched. The epoch/invalidation columns show that machinery;
    // the strategies must still agree with each other on the new data.
    let db = generate_dblife(&DblifeConfig::small());
    let mut mutated = MutableDatabase::new(db, 4)?;
    mutated.share_eval_cache(None);
    {
        // Warm the shared store pre-write so invalidation has work to do.
        let warm = mutated.session(DebugConfig {
            sample_limit: 0,
            eval_cache: true,
            ..DebugConfig::default()
        })?;
        warm.debug(query)?;
    }
    // A new person named Das: overlaps the warmed query's keyword entries,
    // so the shared store must shed exactly those.
    let person = mutated.table_id("person").expect("dblife schema");
    mutated.append_rows(person, vec![vec![Value::Int(900_001), Value::text("Anjali Das")]])?;
    println!("\nafter a write (epoch {}), same session machinery:\n", mutated.epoch());
    println!(
        "{:<8} {:>7} {:>6} {:>12} {:>12} {:>12}",
        "strategy", "probes", "epoch", "delta-merge", "invalidated", "compactions"
    );
    let mut mutated_reference = None;
    for kind in StrategyKind::ALL {
        let session = mutated.session(DebugConfig {
            strategy: kind,
            sample_limit: 0,
            eval_cache: true,
            ..DebugConfig::default()
        })?;
        let report = session.debug(query)?;
        let signature =
            (report.answer_count(), report.non_answer_count(), report.mpan_count());
        match &mutated_reference {
            None => mutated_reference = Some(signature),
            Some(r) => {
                assert_eq!(*r, signature, "{kind} disagrees on the mutated database")
            }
        }
        let p = report.probes();
        assert_eq!(p.epoch, mutated.epoch(), "sessions report the live epoch");
        println!(
            "{:<8} {:>7} {:>6} {:>12} {:>12} {:>12}",
            kind.name(),
            p.probes_executed,
            p.epoch,
            p.delta_postings_merged,
            p.entries_invalidated,
            p.compactions,
        );
    }
    println!(
        "\nall strategies agree after the write; the index served {} pending delta rows in place",
        mutated.index().pending_delta_rows()
    );
    Ok(())
}
