//! Compare all five traversal strategies on one query.
//!
//! Runs the paper's Q3 ("Agrawal Chaudhuri Das") through BU, BUWR, TD, TDWR
//! and SBH over the same offline lattice, verifying they agree on the output
//! while differing — often dramatically — in how many SQL queries they
//! execute. This is Figures 11/12 in miniature.
//!
//! Run with: `cargo run --release --example traversal_shootout`

use kws_nonanswer_debug::datagen::{generate_dblife, DblifeConfig};
use kws_nonanswer_debug::kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kws_nonanswer_debug::kwdebug::traversal::StrategyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate_dblife(&DblifeConfig::small());
    let debugger = NonAnswerDebugger::new(
        db,
        DebugConfig { max_joins: 4, sample_limit: 0, ..DebugConfig::default() },
    )?;

    let query = "Agrawal Chaudhuri Das";
    println!("query: {query:?} (the paper's Q3)\n");
    println!("{:<8} {:>12} {:>12} {:>10} {:>12}", "strategy", "SQL queries", "time", "answers", "non-answers");

    let mut reference: Option<(usize, usize, usize)> = None;
    for kind in StrategyKind::ALL {
        let report = debugger.debug_with_strategy(query, kind)?;
        let signature =
            (report.answer_count(), report.non_answer_count(), report.mpan_count());
        match &reference {
            None => reference = Some(signature),
            Some(r) => assert_eq!(*r, signature, "{kind} disagrees with the other strategies"),
        }
        println!(
            "{:<8} {:>12} {:>12} {:>10} {:>12}",
            kind.name(),
            report.sql_queries(),
            format!("{:.2?}", report.sql_time()),
            signature.0,
            signature.1,
        );
    }
    println!("\nall strategies produced identical answers, non-answers and MPANs");
    Ok(())
}
