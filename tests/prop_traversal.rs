//! Property tests for Phase 3: strategy equivalence and MPAN invariants on
//! randomized databases.
//!
//! For random data over a 3-entity/2-relationship schema and random keyword
//! queries, every traversal strategy must agree exactly with brute force;
//! and every reported MPAN must satisfy the definition directly against the
//! aliveness oracle: it is alive, it is a strict descendant of its dead MTN,
//! no ancestor within the MTN's cone is alive, and every alive descendant of
//! the dead MTN is covered by (is a descendant of) some MPAN.

use proptest::prelude::*;

use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::lattice::Lattice;
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};
use kwdebug::SchemaGraph;
use relengine::{DataType, Database, DatabaseBuilder, Value};
use textindex::InvertedIndex;

const WORDS: [&str; 6] = ["amber", "basil", "cedar", "dune", "ember", "fern"];

/// Random store: tag(id, label), item(id, name, tag_id), link(item_a, item_b).
fn build_db(
    tags: &[(i64, u8)],
    items: &[(i64, u8, u8, Option<i64>)],
    links: &[(i64, i64)],
) -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("tag")
        .column("id", DataType::Int)
        .column("label", DataType::Text)
        .primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("tag_id", DataType::Int)
        .primary_key("id");
    b.table("link")
        .column("item_a", DataType::Int)
        .column("item_b", DataType::Int);
    b.foreign_key("item", "tag_id", "tag", "id").expect("static");
    b.foreign_key("link", "item_a", "item", "id").expect("static");
    b.foreign_key("link", "item_b", "item", "id").expect("static");
    let mut db = b.finish().expect("static");
    for (i, (_, w)) in tags.iter().enumerate() {
        db.insert_values(
            "tag",
            vec![Value::Int(i as i64 + 1), Value::text(WORDS[*w as usize % WORDS.len()])],
        )
        .expect("typed");
    }
    for (i, (_, w1, w2, tag)) in items.iter().enumerate() {
        let name = format!(
            "{} {}",
            WORDS[*w1 as usize % WORDS.len()],
            WORDS[*w2 as usize % WORDS.len()]
        );
        let tag_id = tag.map(|t| (t.unsigned_abs() as usize % tags.len().max(1)) as i64 + 1);
        db.insert_values(
            "item",
            vec![
                Value::Int(i as i64 + 1),
                Value::text(name),
                tag_id.filter(|_| !tags.is_empty()).map_or(Value::Null, Value::Int),
            ],
        )
        .expect("typed");
    }
    for (a, b_) in links {
        if items.is_empty() {
            break;
        }
        let n = items.len() as i64;
        db.insert_values(
            "link",
            vec![Value::Int(a.rem_euclid(n) + 1), Value::Int(b_.rem_euclid(n) + 1)],
        )
        .expect("typed");
    }
    db.finalize();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strategies_agree_and_mpans_satisfy_definition(
        tags in proptest::collection::vec((0i64..4, 0u8..6), 1..4),
        items in proptest::collection::vec(
            (0i64..8, 0u8..6, 0u8..6, proptest::option::of(0i64..8)), 1..8),
        links in proptest::collection::vec((0i64..8, 0i64..8), 0..6),
        kw1 in 0usize..6,
        kw2 in 0usize..6,
        max_joins in 1usize..4,
    ) {
        let db = build_db(&tags, &items, &links);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        let index = InvertedIndex::build(&db);
        let text = format!("{} {}", WORDS[kw1], WORDS[kw2]);
        let Ok(query) = KeywordQuery::parse(&text) else { return Ok(()) };
        let mapping = map_keywords(&query, &index);

        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(&lattice, interp);
            let mut oracle =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
            let reference = traversal::run(
                StrategyKind::BruteForce, &lattice, &pruned, &mut oracle, 0.5,
            ).expect("brute runs");

            // 1. Strategy equivalence.
            for kind in StrategyKind::ALL {
                let mut oracle =
                    AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
                let out = traversal::run(kind, &lattice, &pruned, &mut oracle, 0.5)
                    .expect("strategy runs");
                prop_assert_eq!(&out.alive_mtns, &reference.alive_mtns, "{}", kind);
                prop_assert_eq!(&out.dead_mtns, &reference.dead_mtns, "{}", kind);
                prop_assert_eq!(&out.mpans, &reference.mpans, "{}", kind);
            }

            // 2. MPAN definition, checked against the oracle directly.
            let mut truth =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, true);
            let alive = |dense: usize, truth: &mut AlivenessOracle<'_>| {
                truth
                    .is_alive(pruned.lattice_id(dense), pruned.jnts(&lattice, dense))
                    .expect("oracle runs")
            };
            for (&m, mpans) in reference.dead_mtns.iter().zip(&reference.mpans) {
                prop_assert!(!alive(m, &mut truth), "dead MTN must be dead");
                for &p in mpans {
                    prop_assert!(p != m);
                    prop_assert!(pruned.is_desc_or_self(p, m), "MPAN within Desc(m)");
                    prop_assert!(alive(p, &mut truth), "MPAN must be alive");
                    // Maximality: no alive strict ancestor within Desc+(m).
                    for &a in pruned.asc_plus(p) {
                        if a != p && pruned.is_desc_or_self(a, m) {
                            prop_assert!(!alive(a, &mut truth), "MPAN has alive ancestor");
                        }
                    }
                }
                // Coverage: every alive node in Desc(m) is under some MPAN.
                for &d in pruned.desc_plus(m) {
                    if d == m || !alive(d, &mut truth) {
                        continue;
                    }
                    prop_assert!(
                        mpans.iter().any(|&p| pruned.is_desc_or_self(d, p)),
                        "alive descendant not covered by any MPAN"
                    );
                }
            }

            // 3. R1/R2 semantics hold for the query class itself: children of
            // alive nodes are alive.
            for dense in 0..pruned.len() {
                if alive(dense, &mut truth) {
                    for &c in pruned.children(dense) {
                        prop_assert!(alive(c, &mut truth), "sub-query of alive node is dead");
                    }
                }
            }
        }
    }
}
