//! Randomized tests for Phase 3: strategy equivalence and MPAN invariants on
//! randomized databases.
//!
//! For random data over a 3-entity/2-relationship schema and random keyword
//! queries, every traversal strategy must agree exactly with brute force;
//! and every reported MPAN must satisfy the definition directly against the
//! aliveness oracle: it is alive, it is a strict descendant of its dead MTN,
//! no ancestor within the MTN's cone is alive, and every alive descendant of
//! the dead MTN is covered by (is a descendant of) some MPAN.
//!
//! The traversal metrics are cross-checked on the same runs: each strategy's
//! reported `sql_queries` must equal the oracle's own probe counter.
//!
//! Cases are drawn from a seeded [`SplitMix64`] stream (the registry-free
//! stand-in for proptest), so failures replay deterministically.

use datagen::rng::SplitMix64;
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::lattice::Lattice;
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};
use kwdebug::SchemaGraph;
use relengine::{DataType, Database, DatabaseBuilder, Value};
use textindex::InvertedIndex;

const WORDS: [&str; 6] = ["amber", "basil", "cedar", "dune", "ember", "fern"];

/// Random store: tag(id, label), item(id, name, tag_id), link(item_a, item_b).
fn build_db(
    tags: &[(i64, u8)],
    items: &[(i64, u8, u8, Option<i64>)],
    links: &[(i64, i64)],
) -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("tag")
        .column("id", DataType::Int)
        .column("label", DataType::Text)
        .primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("tag_id", DataType::Int)
        .primary_key("id");
    b.table("link")
        .column("item_a", DataType::Int)
        .column("item_b", DataType::Int);
    b.foreign_key("item", "tag_id", "tag", "id").expect("static");
    b.foreign_key("link", "item_a", "item", "id").expect("static");
    b.foreign_key("link", "item_b", "item", "id").expect("static");
    let mut db = b.finish().expect("static");
    for (i, (_, w)) in tags.iter().enumerate() {
        db.insert_values(
            "tag",
            vec![Value::Int(i as i64 + 1), Value::text(WORDS[*w as usize % WORDS.len()])],
        )
        .expect("typed");
    }
    for (i, (_, w1, w2, tag)) in items.iter().enumerate() {
        let name = format!(
            "{} {}",
            WORDS[*w1 as usize % WORDS.len()],
            WORDS[*w2 as usize % WORDS.len()]
        );
        let tag_id = tag.map(|t| (t.unsigned_abs() as usize % tags.len().max(1)) as i64 + 1);
        db.insert_values(
            "item",
            vec![
                Value::Int(i as i64 + 1),
                Value::text(name),
                tag_id.filter(|_| !tags.is_empty()).map_or(Value::Null, Value::Int),
            ],
        )
        .expect("typed");
    }
    for (a, b_) in links {
        if items.is_empty() {
            break;
        }
        let n = items.len() as i64;
        db.insert_values(
            "link",
            vec![Value::Int(a.rem_euclid(n) + 1), Value::Int(b_.rem_euclid(n) + 1)],
        )
        .expect("typed");
    }
    db.finalize();
    db
}

/// One random case: tags, items, links, two keywords, and a maxJoins.
#[allow(clippy::type_complexity)]
fn random_case(
    rng: &mut SplitMix64,
) -> (Vec<(i64, u8)>, Vec<(i64, u8, u8, Option<i64>)>, Vec<(i64, i64)>, usize, usize, usize) {
    let tags: Vec<(i64, u8)> = (0..rng.gen_range(1..4usize))
        .map(|_| (rng.gen_range(0i64..6), rng.below(6) as u8))
        .collect();
    let items: Vec<(i64, u8, u8, Option<i64>)> = (0..rng.gen_range(1..8usize))
        .map(|_| {
            (
                rng.gen_range(0i64..8),
                rng.below(6) as u8,
                rng.below(6) as u8,
                rng.gen_ratio(1, 2).then(|| rng.gen_range(0i64..8)),
            )
        })
        .collect();
    let links: Vec<(i64, i64)> = (0..rng.gen_range(0..6usize))
        .map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..8)))
        .collect();
    let kw1 = rng.gen_range(0..WORDS.len());
    let kw2 = rng.gen_range(0..WORDS.len());
    let max_joins = rng.gen_range(1..4usize);
    (tags, items, links, kw1, kw2, max_joins)
}

#[test]
fn strategies_agree_and_mpans_satisfy_definition() {
    let mut rng = SplitMix64::seed_from_u64(0x7A01);
    for case in 0..24 {
        let (tags, items, links, kw1, kw2, max_joins) = random_case(&mut rng);
        let db = build_db(&tags, &items, &links);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        let index = InvertedIndex::build(&db);
        let text = format!("{} {}", WORDS[kw1], WORDS[kw2]);
        let Ok(query) = KeywordQuery::parse(&text) else { continue };
        let mapping = map_keywords(&query, &index);

        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(&lattice, interp);
            let mut oracle =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
            let reference =
                traversal::run(StrategyKind::BruteForce, &lattice, &pruned, &mut oracle, 0.5)
                    .expect("brute runs");

            // 1. Strategy equivalence + probe accounting.
            for kind in StrategyKind::ALL {
                let mut oracle =
                    AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
                let out = traversal::run(kind, &lattice, &pruned, &mut oracle, 0.5)
                    .expect("strategy runs");
                assert_eq!(&out.alive_mtns, &reference.alive_mtns, "case {case}: {kind}");
                assert_eq!(&out.dead_mtns, &reference.dead_mtns, "case {case}: {kind}");
                assert_eq!(&out.mpans, &reference.mpans, "case {case}: {kind}");
                assert_eq!(
                    out.sql_queries,
                    oracle.queries(),
                    "case {case}: {kind} misreports probes"
                );
            }

            // 2. MPAN definition, checked against the oracle directly.
            let mut truth =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, true);
            let alive = |dense: usize, truth: &mut AlivenessOracle<'_>| {
                truth
                    .is_alive(pruned.lattice_id(dense), pruned.jnts(&lattice, dense))
                    .expect("oracle runs")
            };
            for (&m, mpans) in reference.dead_mtns.iter().zip(&reference.mpans) {
                assert!(!alive(m, &mut truth), "case {case}: dead MTN must be dead");
                for &p in mpans {
                    assert!(p != m, "case {case}");
                    assert!(pruned.is_desc_or_self(p, m), "case {case}: MPAN within Desc(m)");
                    assert!(alive(p, &mut truth), "case {case}: MPAN must be alive");
                    // Maximality: no alive strict ancestor within Desc+(m).
                    for &a in pruned.asc_plus(p) {
                        if a != p && pruned.is_desc_or_self(a, m) {
                            assert!(
                                !alive(a, &mut truth),
                                "case {case}: MPAN has alive ancestor"
                            );
                        }
                    }
                }
                // Coverage: every alive node in Desc(m) is under some MPAN.
                for &d in pruned.desc_plus(m) {
                    if d == m || !alive(d, &mut truth) {
                        continue;
                    }
                    assert!(
                        mpans.iter().any(|&p| pruned.is_desc_or_self(d, p)),
                        "case {case}: alive descendant not covered by any MPAN"
                    );
                }
            }

            // 3. R1/R2 semantics hold for the query class itself: children of
            // alive nodes are alive.
            for dense in 0..pruned.len() {
                if alive(dense, &mut truth) {
                    for &c in pruned.children(dense) {
                        assert!(
                            alive(c, &mut truth),
                            "case {case}: sub-query of alive node is dead"
                        );
                    }
                }
            }
        }
    }
}
