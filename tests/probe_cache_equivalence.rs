//! Integration: the cross-probe evaluation cache is observably identical to
//! uncached probing.
//!
//! The contract of `kwdebug::evalcache` (DESIGN.md §10) is that the cache
//! changes the *work* of a debug session, never its *answers*: for every
//! strategy, database, worker count and memoization setting, a cache-enabled
//! run must produce the same verdicts, the same answer/non-answer/unknown
//! structure, the same MPANs and the same sample tuples as an uncached run.
//! Probe counts obey the documented identity
//!
//! ```text
//! probes_executed(cache on) + subtree_cache_dead_shortcuts + verdict_cache_hits
//!     == probes_executed(cache off)
//! ```
//!
//! — every probe the cache skips is one answered Dead from an empty cached
//! cut value-set or answered (either way) from a cached whole-network
//! verdict. `tuples_scanned`, `probe_time_ns` and the cache-hit
//! counters legitimately differ (that is the point of the cache) and are
//! scrubbed before comparison. Budgets stay unlimited here: a limited budget
//! composed with the cache can change *which* probe trips the cap, which is
//! documented divergence, not an equivalence bug.

use datagen::{generate_dblife, paper_queries, product_database, DblifeConfig};
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::metrics::ProbeCounters;
use kwdebug::traversal::StrategyKind;
use kwdebug::DebugReport;
use relengine::FaultConfig;

const ALL_SIX: [StrategyKind; 6] = [
    StrategyKind::BottomUp,
    StrategyKind::TopDown,
    StrategyKind::BottomUpWithReuse,
    StrategyKind::TopDownWithReuse,
    StrategyKind::ScoreBasedHeuristic,
    StrategyKind::BruteForce,
];

/// Blanks the per-interpretation query count and wall clock of rendered
/// report lines — `(12 SQL queries, 1.3ms)` → `(q SQL queries, t)` — since
/// dead shortcuts legitimately shrink the executed-query count.
fn scrub(s: &str) -> String {
    s.lines()
        .map(|l| match l.find(" SQL queries, ") {
            Some(i) => match l[..i].rfind('(') {
                Some(j) => format!("{}(q SQL queries, t)", &l[..j]),
                None => l.to_string(),
            },
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Drops the counters that legitimately vary with the cache (and with
/// parallel scheduling). `probes_executed` is excluded here because it is
/// checked exactly through the dead-shortcut identity instead.
fn comparable(mut p: ProbeCounters) -> ProbeCounters {
    p.probe_time_ns = 0;
    p.tuples_scanned = 0;
    p.probes_executed = 0;
    p.selection_cache_hits = 0;
    p.subtree_cache_hits = 0;
    p.subtree_cache_dead_shortcuts = 0;
    p.verdict_cache_hits = 0;
    p.cache_bytes = 0;
    p.workers = 0;
    p.steals = 0;
    p
}

/// Asserts a cache-enabled report is observably identical to the uncached
/// baseline, probe counts included (via the dead-shortcut identity).
fn assert_cache_equivalent(off: &DebugReport, on: &DebugReport, ctx: &str) {
    assert_eq!(scrub(&on.to_string()), scrub(&off.to_string()), "{ctx}: rendered report");
    assert_eq!(on.interpretations.len(), off.interpretations.len(), "{ctx}");
    for (a, b) in on.interpretations.iter().zip(&off.interpretations) {
        assert_eq!(a.answers, b.answers, "{ctx}: answers (SQL + samples)");
        assert_eq!(a.non_answers, b.non_answers, "{ctx}: non-answers + MPANs");
        assert_eq!(a.unknown, b.unknown, "{ctx}: unknown");
        assert_eq!(a.budget_exhausted, b.budget_exhausted, "{ctx}: exhaustion cause");
        assert_eq!(comparable(a.probes), comparable(b.probes), "{ctx}: probe counters");
        assert_eq!(
            a.probes.probes_executed
                + a.probes.subtree_cache_dead_shortcuts
                + a.probes.verdict_cache_hits,
            b.probes.probes_executed,
            "{ctx}: every skipped probe is accounted as a shortcut"
        );
        assert_eq!(
            a.sql_queries + a.probes.subtree_cache_dead_shortcuts + a.probes.verdict_cache_hits,
            b.sql_queries,
            "{ctx}: traversal query counts obey the same identity"
        );
    }
}

/// Every strategy on the paper's Figure 2 toy store, with and without
/// memoization, samples on — cache-on reports must match cache-off ones
/// even as the cache warms across strategies.
#[test]
fn toydb_reports_match_uncached_for_every_strategy() {
    for memoize in [false, true] {
        let off = NonAnswerDebugger::new(
            product_database(),
            DebugConfig { max_joins: 2, memoize, ..DebugConfig::default() },
        )
        .expect("toy system builds");
        let on = NonAnswerDebugger::new(
            product_database(),
            DebugConfig { max_joins: 2, memoize, eval_cache: true, ..DebugConfig::default() },
        )
        .expect("toy system builds");
        for kind in ALL_SIX {
            let base = off.debug_with_strategy("saffron scented candle", kind).expect("runs");
            let cached = on.debug_with_strategy("saffron scented candle", kind).expect("runs");
            assert_cache_equivalent(&base, &cached, &format!("toydb {kind} memo={memoize}"));
        }
        assert!(on.eval_cache().bytes() > 0, "the session cache was populated");
        assert!(on.eval_cache().selection_entries() > 0);
    }
}

/// Every strategy × workers ∈ {1, 4} over seeded DBLife instances and a
/// slice of the paper's Table 2 workload. The sequential uncached run is the
/// single baseline: `parallel_equivalence` already pins workers-off
/// equivalence, so matching it transitively covers cache × parallel.
#[test]
fn dblife_reports_match_uncached_across_seeds_and_workers() {
    for seed in [DblifeConfig::tiny().seed, 99] {
        let off = NonAnswerDebugger::new(
            generate_dblife(&DblifeConfig { seed, ..DblifeConfig::tiny() }),
            DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() },
        )
        .expect("system builds");
        let mut on = NonAnswerDebugger::new(
            generate_dblife(&DblifeConfig { seed, ..DblifeConfig::tiny() }),
            DebugConfig {
                max_joins: 3,
                sample_limit: 0,
                eval_cache: true,
                ..DebugConfig::default()
            },
        )
        .expect("system builds");
        for q in paper_queries().iter().take(3) {
            for kind in ALL_SIX {
                let base = off.debug_with_strategy(q.text, kind).expect("runs");
                for workers in [1, 4] {
                    on.set_workers(workers);
                    let cached = on.debug_with_strategy(q.text, kind).expect("runs");
                    assert_cache_equivalent(
                        &base,
                        &cached,
                        &format!("dblife seed={seed} {} {kind} w={workers}", q.id),
                    );
                }
            }
        }
    }
}

/// A warm session must answer the same query with the same report and
/// strictly less engine work: selections and subtree value-sets from the
/// first pass serve the second.
#[test]
fn warm_session_repeats_identically_with_less_work() {
    let sys = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins: 3, sample_limit: 0, eval_cache: true, ..DebugConfig::default() },
    )
    .expect("system builds");
    for q in paper_queries().iter().take(3) {
        let cold = sys.debug(q.text).expect("cold run");
        let warm = sys.debug(q.text).expect("warm run");
        assert_cache_equivalent(&cold, &warm, &format!("{} warm repeat", q.id));
        let w = warm.probes();
        if cold.probes().probes_executed > 0 {
            assert!(
                w.selection_cache_hits
                    + w.subtree_cache_hits
                    + w.subtree_cache_dead_shortcuts
                    + w.verdict_cache_hits
                    > 0,
                "{}: warm run reuses session state",
                q.id
            );
        }
        assert!(
            w.tuples_scanned <= cold.probes().tuples_scanned,
            "{}: warm run never scans more",
            q.id
        );
    }
}

/// Chaos faults abort probes *before* execution, so a degraded session can
/// only cache completed reductions: after the faults stop, the surviving
/// cache must still reproduce the clean uncached report bit for bit.
#[test]
fn failed_probes_never_poison_the_cache() {
    let mut sys = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins: 3, sample_limit: 0, eval_cache: true, ..DebugConfig::default() },
    )
    .expect("system builds");
    // Populate the cache under heavy transient faults (degraded reports are
    // fine here — only the cache contents carry over).
    sys.set_chaos(Some(FaultConfig::transient(7, 300)));
    for q in paper_queries().iter().take(3) {
        sys.debug(q.text).expect("chaotic run never hard-errors");
    }
    assert!(sys.eval_cache().bytes() > 0, "the degraded session still cached completed work");
    // Faults off: the warmed cache must agree with a clean uncached system.
    sys.set_chaos(None);
    let clean = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() },
    )
    .expect("system builds");
    for q in paper_queries().iter().take(3) {
        let base = clean.debug(q.text).expect("clean run");
        let cached = sys.debug(q.text).expect("post-chaos run");
        assert_cache_equivalent(&base, &cached, &format!("{} post-chaos", q.id));
    }
}
