//! Soundness of degraded-mode traversal under injected faults and budgets.
//!
//! For random databases and keyword queries (same generator as
//! `prop_traversal`), run every traversal strategy under deterministic fault
//! injection and under tight probe budgets, and check the partial results
//! against a clean brute-force ground truth:
//!
//! * every MTN a degraded run claims alive/dead really is alive/dead
//!   (claims are sound; only `Unknown` may hide the truth);
//! * the claimed MTN sets partition the MTNs (alive + dead + unknown);
//! * every confirmed MPAN of a degraded run is a true MPAN of its dead MTN
//!   (sound lower bound), and every true MPAN appears among the confirmed or
//!   possible MPANs (`confirmed ∪ possible` is a sound upper bound);
//! * fault rate 0 with an unlimited budget reproduces the clean outcome
//!   exactly, counters included (modulo wall-clock time);
//! * `probes_executed` equals the engine's own query counter even when
//!   probes fail and retry; and
//! * the same chaos seed yields byte-identical outcomes on repeat runs.

use std::collections::HashSet;
use std::time::Duration;

use datagen::rng::SplitMix64;
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::budget::ProbeBudget;
use kwdebug::lattice::Lattice;
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind, TraversalOutcome};
use kwdebug::SchemaGraph;
use relengine::{DataType, Database, DatabaseBuilder, FaultConfig, Value};
use textindex::InvertedIndex;

const WORDS: [&str; 6] = ["amber", "basil", "cedar", "dune", "ember", "fern"];

/// Random store: tag(id, label), item(id, name, tag_id), link(item_a, item_b).
fn build_db(
    tags: &[(i64, u8)],
    items: &[(i64, u8, u8, Option<i64>)],
    links: &[(i64, i64)],
) -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("tag")
        .column("id", DataType::Int)
        .column("label", DataType::Text)
        .primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("tag_id", DataType::Int)
        .primary_key("id");
    b.table("link")
        .column("item_a", DataType::Int)
        .column("item_b", DataType::Int);
    b.foreign_key("item", "tag_id", "tag", "id").expect("static");
    b.foreign_key("link", "item_a", "item", "id").expect("static");
    b.foreign_key("link", "item_b", "item", "id").expect("static");
    let mut db = b.finish().expect("static");
    for (i, (_, w)) in tags.iter().enumerate() {
        db.insert_values(
            "tag",
            vec![Value::Int(i as i64 + 1), Value::text(WORDS[*w as usize % WORDS.len()])],
        )
        .expect("typed");
    }
    for (i, (_, w1, w2, tag)) in items.iter().enumerate() {
        let name = format!(
            "{} {}",
            WORDS[*w1 as usize % WORDS.len()],
            WORDS[*w2 as usize % WORDS.len()]
        );
        let tag_id = tag.map(|t| (t.unsigned_abs() as usize % tags.len().max(1)) as i64 + 1);
        db.insert_values(
            "item",
            vec![
                Value::Int(i as i64 + 1),
                Value::text(name),
                tag_id.filter(|_| !tags.is_empty()).map_or(Value::Null, Value::Int),
            ],
        )
        .expect("typed");
    }
    for (a, b_) in links {
        if items.is_empty() {
            break;
        }
        let n = items.len() as i64;
        db.insert_values(
            "link",
            vec![Value::Int(a.rem_euclid(n) + 1), Value::Int(b_.rem_euclid(n) + 1)],
        )
        .expect("typed");
    }
    db.finalize();
    db
}

/// One random case: tags, items, links, two keywords, and a maxJoins.
#[allow(clippy::type_complexity)]
fn random_case(
    rng: &mut SplitMix64,
) -> (Vec<(i64, u8)>, Vec<(i64, u8, u8, Option<i64>)>, Vec<(i64, i64)>, usize, usize, usize) {
    let tags: Vec<(i64, u8)> = (0..rng.gen_range(1..4usize))
        .map(|_| (rng.gen_range(0i64..6), rng.below(6) as u8))
        .collect();
    let items: Vec<(i64, u8, u8, Option<i64>)> = (0..rng.gen_range(1..8usize))
        .map(|_| {
            (
                rng.gen_range(0i64..8),
                rng.below(6) as u8,
                rng.below(6) as u8,
                rng.gen_ratio(1, 2).then(|| rng.gen_range(0i64..8)),
            )
        })
        .collect();
    let links: Vec<(i64, i64)> = (0..rng.gen_range(0..6usize))
        .map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..8)))
        .collect();
    let kw1 = rng.gen_range(0..WORDS.len());
    let kw2 = rng.gen_range(0..WORDS.len());
    let max_joins = rng.gen_range(1..4usize);
    (tags, items, links, kw1, kw2, max_joins)
}

/// A chaos config for one sweep point: moderately noisy, fully deterministic.
fn chaos(seed: u64, transient: u32, permanent: u32) -> FaultConfig {
    FaultConfig {
        seed,
        transient_per_mille: transient,
        permanent_per_mille: permanent,
        latency_per_mille: 0,
        latency: Duration::ZERO,
        fail_first_transient: 0,
    }
}

/// Checks one degraded outcome against clean ground truth.
fn assert_sound(
    label: &str,
    out: &TraversalOutcome,
    reference: &TraversalOutcome,
    pruned: &PrunedLattice,
) {
    // MTN partition: every MTN is claimed exactly once.
    let claimed: Vec<usize> = out
        .alive_mtns
        .iter()
        .chain(&out.dead_mtns)
        .chain(&out.unknown_mtns)
        .copied()
        .collect();
    let unique: HashSet<usize> = claimed.iter().copied().collect();
    assert_eq!(claimed.len(), pruned.mtns().len(), "{label}: MTN partition size");
    assert_eq!(unique.len(), claimed.len(), "{label}: MTN claimed twice");

    // Soundness of claims against ground truth.
    let truly_alive: HashSet<usize> = reference.alive_mtns.iter().copied().collect();
    let truly_dead: HashSet<usize> = reference.dead_mtns.iter().copied().collect();
    for &m in &out.alive_mtns {
        assert!(truly_alive.contains(&m), "{label}: claimed-alive MTN {m} is dead");
    }
    for &m in &out.dead_mtns {
        assert!(truly_dead.contains(&m), "{label}: claimed-dead MTN {m} is alive");
    }
    if out.complete() {
        assert!(out.unknown_mtns.is_empty(), "{label}: complete run with unknowns");
    }

    // MPAN bounds: confirmed ⊆ true MPANs ⊆ confirmed ∪ possible for each
    // dead MTN the degraded run claims.
    for ((&m, confirmed), possible) in
        out.dead_mtns.iter().zip(&out.mpans).zip(&out.possible_mpans)
    {
        let ri = reference.dead_mtns.iter().position(|&r| r == m).expect("claimed dead is dead");
        let true_mpans: HashSet<usize> = reference.mpans[ri].iter().copied().collect();
        for &p in confirmed {
            assert!(true_mpans.contains(&p), "{label}: confirmed MPAN {p} of MTN {m} not a true MPAN");
        }
        for &p in possible {
            assert!(p != m && pruned.is_desc_or_self(p, m), "{label}: possible MPAN outside cone");
            assert!(!confirmed.contains(&p), "{label}: node {p} both confirmed and possible");
        }
        for &p in &true_mpans {
            assert!(
                confirmed.contains(&p) || possible.contains(&p),
                "{label}: true MPAN {p} of MTN {m} escapes confirmed ∪ possible"
            );
        }
        if out.complete() {
            let got: HashSet<usize> = confirmed.iter().copied().collect();
            assert_eq!(got, true_mpans, "{label}: complete run must report exact MPANs for MTN {m}");
        }
    }
}

#[test]
fn degraded_runs_stay_sound_under_chaos_and_budgets() {
    let mut rng = SplitMix64::seed_from_u64(0xC4A05);
    for case in 0..12 {
        let (tags, items, links, kw1, kw2, max_joins) = random_case(&mut rng);
        let db = build_db(&tags, &items, &links);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        let index = InvertedIndex::build(&db);
        let text = format!("{} {}", WORDS[kw1], WORDS[kw2]);
        let Ok(query) = KeywordQuery::parse(&text) else { continue };
        let mapping = map_keywords(&query, &index);

        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(&lattice, interp);
            let mut oracle =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
            let reference =
                traversal::run(StrategyKind::BruteForce, &lattice, &pruned, &mut oracle, 0.5)
                    .expect("brute runs");

            for kind in StrategyKind::ALL {
                // Chaos sweep: transient-heavy and permanent-heavy mixes.
                for (transient, permanent) in [(200, 0), (100, 100), (0, 300)] {
                    let config = chaos(0xFA_0000 + case, transient, permanent);
                    let mut oracle =
                        AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false)
                            .with_chaos(config);
                    let out = traversal::run(kind, &lattice, &pruned, &mut oracle, 0.5)
                        .expect("chaos degrades, never errors");
                    let label = format!("case {case} {kind} chaos {transient}/{permanent}");
                    assert_eq!(
                        out.sql_queries,
                        oracle.queries(),
                        "{label}: probes_executed must track engine queries"
                    );
                    assert_sound(&label, &out, &reference, &pruned);

                    // Determinism: the same seed replays byte-identically.
                    let mut oracle2 =
                        AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false)
                            .with_chaos(config);
                    let out2 = traversal::run(kind, &lattice, &pruned, &mut oracle2, 0.5)
                        .expect("replay runs");
                    assert_eq!(out.alive_mtns, out2.alive_mtns, "{label}: replay diverged");
                    assert_eq!(out.dead_mtns, out2.dead_mtns, "{label}: replay diverged");
                    assert_eq!(out.unknown_mtns, out2.unknown_mtns, "{label}: replay diverged");
                    assert_eq!(out.mpans, out2.mpans, "{label}: replay diverged");
                    assert_eq!(out.possible_mpans, out2.possible_mpans, "{label}: replay diverged");
                }

                // Budget sweep: 0, 1, and 3 probes per interpretation.
                for cap in [0u64, 1, 3] {
                    let mut oracle =
                        AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false)
                            .with_budget(ProbeBudget::probes(cap));
                    let out = traversal::run(kind, &lattice, &pruned, &mut oracle, 0.5)
                        .expect("budget exhaustion degrades, never errors");
                    let label = format!("case {case} {kind} budget {cap}");
                    assert!(
                        out.sql_queries <= cap,
                        "{label}: executed {} probes over the cap",
                        out.sql_queries
                    );
                    assert_sound(&label, &out, &reference, &pruned);
                }

                // Quiet chaos + unlimited budget reproduces the clean run.
                let mut clean =
                    AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
                let base = traversal::run(kind, &lattice, &pruned, &mut clean, 0.5)
                    .expect("clean runs");
                let mut quiet =
                    AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false)
                        .with_chaos(chaos(9, 0, 0))
                        .with_budget(ProbeBudget::unlimited());
                let out = traversal::run(kind, &lattice, &pruned, &mut quiet, 0.5)
                    .expect("quiet chaos runs");
                let label = format!("case {case} {kind} quiet");
                assert_eq!(out.alive_mtns, base.alive_mtns, "{label}");
                assert_eq!(out.dead_mtns, base.dead_mtns, "{label}");
                assert_eq!(out.mpans, base.mpans, "{label}");
                assert!(out.possible_mpans.iter().all(Vec::is_empty), "{label}");
                assert!(out.unknown_mtns.is_empty(), "{label}");
                assert!(out.exhausted.is_none(), "{label}");
                assert_eq!(out.sql_queries, base.sql_queries, "{label}");
                let (mut a, mut b) = (out.probes, base.probes);
                a.probe_time_ns = 0;
                b.probe_time_ns = 0;
                assert_eq!(a, b, "{label}: counters diverge under quiet chaos");
            }
        }
    }
}
