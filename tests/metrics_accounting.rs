//! Probe accounting: the metrics layer must agree with the engine.
//!
//! Two contracts from the observability layer (`kwdebug::metrics`):
//!
//! 1. **Probes are grounded.** For every traversal strategy, the outcome's
//!    `probes.probes_executed` equals the engine's own executed-query count
//!    (`AlivenessOracle::queries`, i.e. `ExecStats::queries`) and the
//!    outcome's legacy `sql_queries` field. A counter that drifts from the
//!    engine's ground truth would silently invalidate every Figure 11/12
//!    style measurement.
//!
//! 2. **Reuse is real.** On a workload with ≥2 MTNs sharing descendants, the
//!    with-reuse traversals (BUWR/TDWR, §2.5.2) execute *strictly fewer*
//!    probes than their per-MTN counterparts (BU/TD), and the saving shows
//!    up in `reuse_hits`. This is the paper's Figure 13 mechanism in
//!    miniature.
//!
//! 3. **Degraded runs keep the books.** A zero-probe budget yields an
//!    all-Unknown partial outcome with zero probes on both sides of the
//!    ledger, and a deadline tripping mid-traversal (forced by injected
//!    probe latency) still leaves `probes_executed` equal to the engine's
//!    `ExecStats::queries` — failed or refused attempts never count.
//!
//! The fixture is a citation-style schema with two parallel link tables
//! (`pub` and `award`) between `author` and `venue`. Keywords bind to
//! `author.name` and `venue.title`, so the level-3 pruned lattice has
//! exactly two MTNs — author–pub–venue and author–award–venue — whose cones
//! share the level-1 singleton nodes. Both link tables are empty, so every
//! MTN and every level-2 node is dead and each traversal must descend to the
//! shared singletons: BU/TD probe them once per MTN, BUWR/TDWR once total.

use std::time::Duration;

use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::budget::{Exhausted, ProbeBudget};
use kwdebug::lattice::Lattice;
use kwdebug::oracle::AlivenessOracle;
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind, TraversalOutcome};
use kwdebug::SchemaGraph;
use relengine::{DataType, Database, DatabaseBuilder, FaultConfig, Value};
use textindex::InvertedIndex;

/// author(id, name) ←[pub|award]→ venue(id, title); both link tables empty.
fn two_path_db() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("author").column("id", DataType::Int).column("name", DataType::Text)
        .primary_key("id");
    b.table("venue").column("id", DataType::Int).column("title", DataType::Text)
        .primary_key("id");
    b.table("pub")
        .column("id", DataType::Int)
        .column("author_id", DataType::Int)
        .column("venue_id", DataType::Int)
        .primary_key("id");
    b.table("award")
        .column("id", DataType::Int)
        .column("author_id", DataType::Int)
        .column("venue_id", DataType::Int)
        .primary_key("id");
    b.foreign_key("pub", "author_id", "author", "id").unwrap();
    b.foreign_key("pub", "venue_id", "venue", "id").unwrap();
    b.foreign_key("award", "author_id", "author", "id").unwrap();
    b.foreign_key("award", "venue_id", "venue", "id").unwrap();
    let mut db = b.finish().unwrap();
    db.insert_values("author", vec![Value::Int(1), Value::text("halevy")]).unwrap();
    db.insert_values("author", vec![Value::Int(2), Value::text("widom")]).unwrap();
    db.insert_values("venue", vec![Value::Int(1), Value::text("sigmod")]).unwrap();
    db.insert_values("venue", vec![Value::Int(2), Value::text("vldb")]).unwrap();
    // No pubs, no awards: `halevy sigmod` is a non-answer on both join paths,
    // while both singleton sub-queries stay alive.
    db.finalize();
    db
}

/// Runs `kind` on the fixture's single interpretation with a fresh oracle,
/// returning the outcome plus the oracle's own executed-query count.
fn run_strategy(kind: StrategyKind) -> (TraversalOutcome, u64, usize) {
    let db = two_path_db();
    let graph = SchemaGraph::new(&db);
    let lattice = Lattice::build(&db, &graph, 2);
    let index = InvertedIndex::build(&db);
    let query = KeywordQuery::parse("halevy sigmod").unwrap();
    let mapping = map_keywords(&query, &index);
    assert_eq!(mapping.interpretations.len(), 1, "keywords bind unambiguously");
    let interp = &mapping.interpretations[0];
    let pruned = PrunedLattice::build(&lattice, interp);
    let mut oracle = AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
    let out = traversal::run(kind, &lattice, &pruned, &mut oracle, 0.5).expect("traversal runs");
    (out, oracle.queries(), pruned.stats().mtn_count)
}

/// Contract 1: every strategy's probe counter equals the engine's executed
/// query count and the legacy `sql_queries` field — on a fixed non-answer.
#[test]
fn probe_count_equals_oracle_executions_per_strategy() {
    for kind in StrategyKind::ALL.into_iter().chain([StrategyKind::BruteForce]) {
        let (out, engine_queries, _) = run_strategy(kind);
        assert!(engine_queries > 0, "{kind}: the non-answer requires probing");
        assert_eq!(
            out.probes.probes_executed, engine_queries,
            "{kind}: probes_executed must equal the engine's ExecStats::queries"
        );
        assert_eq!(
            out.probes.probes_executed, out.sql_queries,
            "{kind}: probes_executed must equal the reported sql_queries"
        );
        assert_eq!(out.probes.memo_hits, 0, "{kind}: memoization is off");
    }
}

/// Contract 2: with ≥2 MTNs sharing descendants, reuse strictly saves probes.
#[test]
fn with_reuse_strategies_probe_strictly_less() {
    let (bu, _, mtns) = run_strategy(StrategyKind::BottomUp);
    let (buwr, _, _) = run_strategy(StrategyKind::BottomUpWithReuse);
    let (td, _, _) = run_strategy(StrategyKind::TopDown);
    let (tdwr, _, _) = run_strategy(StrategyKind::TopDownWithReuse);

    assert!(mtns >= 2, "fixture must yield a multi-MTN workload, got {mtns}");
    assert_eq!(bu.alive_mtns.len(), 0, "both candidate networks are dead");
    assert_eq!(bu.dead_mtns.len(), mtns);

    assert!(
        buwr.probes.probes_executed < bu.probes.probes_executed,
        "BUWR ({}) must probe strictly less than BU ({})",
        buwr.probes.probes_executed,
        bu.probes.probes_executed
    );
    assert!(
        tdwr.probes.probes_executed < td.probes.probes_executed,
        "TDWR ({}) must probe strictly less than TD ({})",
        tdwr.probes.probes_executed,
        td.probes.probes_executed
    );
    // BUWR's saving shows up as visit-time skips of already-classified nodes.
    // (TDWR's saving here is structural — its single global sweep visits each
    // node once, so nothing is ever re-visited and skipped.)
    assert!(buwr.probes.reuse_hits > 0, "BUWR must record cross-MTN reuse");

    // All four still agree on the output (answers, non-answers, MPANs).
    for out in [&buwr, &td, &tdwr] {
        assert_eq!(out.alive_mtns, bu.alive_mtns);
        assert_eq!(out.dead_mtns, bu.dead_mtns);
        assert_eq!(out.mpans, bu.mpans);
    }
}

/// Like [`run_strategy`], but with a caller-configured oracle (budget/chaos).
fn run_strategy_with(
    kind: StrategyKind,
    configure: impl FnOnce(AlivenessOracle<'_>) -> AlivenessOracle<'_>,
    check: impl FnOnce(&TraversalOutcome, &AlivenessOracle<'_>, usize),
) {
    let db = two_path_db();
    let graph = SchemaGraph::new(&db);
    let lattice = Lattice::build(&db, &graph, 2);
    let index = InvertedIndex::build(&db);
    let query = KeywordQuery::parse("halevy sigmod").unwrap();
    let mapping = map_keywords(&query, &index);
    let interp = &mapping.interpretations[0];
    let pruned = PrunedLattice::build(&lattice, interp);
    let oracle = AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
    let mut oracle = configure(oracle);
    let out = traversal::run(kind, &lattice, &pruned, &mut oracle, 0.5).expect("traversal runs");
    check(&out, &oracle, pruned.stats().mtn_count);
}

/// Contract 3a: a zero-probe budget degrades to an all-Unknown partial
/// outcome — zero probes on both sides of the ledger, every MTN unknown,
/// and the trip recorded exactly once.
#[test]
fn zero_probe_budget_yields_all_unknown_and_zero_probes() {
    for kind in StrategyKind::ALL.into_iter().chain([StrategyKind::BruteForce]) {
        run_strategy_with(
            kind,
            |o| o.with_budget(ProbeBudget::probes(0)),
            |out, oracle, mtns| {
                assert_eq!(out.exhausted, Some(Exhausted::Probes), "{kind}");
                assert_eq!(out.unknown_mtns.len(), mtns, "{kind}: every MTN stays unknown");
                assert!(out.alive_mtns.is_empty() && out.dead_mtns.is_empty(), "{kind}");
                assert_eq!(out.sql_queries, 0, "{kind}: no probe may execute");
                assert_eq!(out.probes.probes_executed, 0, "{kind}");
                assert_eq!(oracle.queries(), 0, "{kind}: engine agrees nothing ran");
                assert_eq!(out.probes.budget_exhausted, 1, "{kind}: trip counted once");
            },
        );
    }
}

/// Contract 3b: a deadline tripping mid-traversal (forced by injected probe
/// latency) still leaves `probes_executed` equal to `ExecStats::queries`,
/// with the partial classification accounted for.
#[test]
fn deadline_mid_traversal_keeps_probe_accounting_grounded() {
    for kind in StrategyKind::ALL.into_iter().chain([StrategyKind::BruteForce]) {
        run_strategy_with(
            kind,
            |o| {
                o.with_budget(ProbeBudget::unlimited().with_deadline(Duration::from_millis(2)))
                    .with_chaos(FaultConfig {
                        seed: 11,
                        transient_per_mille: 0,
                        permanent_per_mille: 0,
                        latency_per_mille: 1000,
                        latency: Duration::from_millis(5),
                        fail_first_transient: 0,
                    })
            },
            |out, oracle, mtns| {
                assert_eq!(out.exhausted, Some(Exhausted::Deadline), "{kind}");
                assert_eq!(out.sql_queries, 1, "{kind}: exactly the first probe runs");
                assert_eq!(
                    out.probes.probes_executed,
                    oracle.queries(),
                    "{kind}: probes_executed must equal ExecStats::queries mid-trip"
                );
                assert_eq!(out.probes.budget_exhausted, 1, "{kind}: trip counted once");
                let classified = out.alive_mtns.len() + out.dead_mtns.len();
                assert_eq!(classified + out.unknown_mtns.len(), mtns, "{kind}: MTN partition");
            },
        );
    }
}
