//! Differential test: the compact Phase 1–2 substrate against a naive
//! reference implementation.
//!
//! The postings/bitset pipeline of [`kwdebug::prune::PrunedLattice`]
//! (DESIGN.md §9) must be observably identical to the definitional form of
//! Phases 1–2: scan every lattice node, classify it with the §3.2 predicates
//! ([`kwdebug::mtn`]), keep MTNs ∪ descendants, and build the closures by the
//! textbook sort/dedup construction. This suite runs both over seeded toydb
//! and DBLife workloads — every interpretation of every query — and compares
//! node sets, levels, adjacency, both closures, MTN sets, membership tests
//! and all `PruneStats` fields.

use datagen::{generate_dblife, paper_queries, product_database, DblifeConfig};
use kwdebug::binding::{map_keywords, Interpretation, KeywordQuery};
use kwdebug::lattice::{Lattice, NodeId};
use kwdebug::mtn::{is_mtn, is_retained, is_total};
use kwdebug::prune::{PruneStats, PrunedLattice};
use kwdebug::workspace::QueryWorkspace;
use kwdebug::SchemaGraph;
use std::collections::{HashMap, HashSet};
use textindex::InvertedIndex;

/// The definitional Phase 1–2 pipeline, kept deliberately naive: full lattice
/// scan with the `mtn` predicates, hash-set Phase 2, sort/dedup closures.
struct NaivePruned {
    nodes: Vec<NodeId>,
    levels: Vec<u32>,
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
    desc_plus: Vec<Vec<usize>>,
    asc_plus: Vec<Vec<usize>>,
    mtns: Vec<usize>,
    stats: PruneStats,
}

fn naive_build(lattice: &Lattice, interp: &Interpretation) -> NaivePruned {
    let mut stats = PruneStats { lattice_nodes: lattice.node_count(), ..PruneStats::default() };

    let mut mtn_ids: Vec<NodeId> = Vec::new();
    for id in lattice.all_nodes() {
        let jnts = lattice.jnts(id);
        if !is_retained(jnts, interp) {
            continue;
        }
        stats.retained_phase1 += 1;
        if is_total(jnts, interp) {
            stats.total_nodes += 1;
            if is_mtn(jnts, interp) {
                mtn_ids.push(id);
            }
        }
    }
    stats.mtn_count = mtn_ids.len();

    let mut keep: HashSet<NodeId> = HashSet::new();
    let mut stack = mtn_ids.clone();
    while let Some(id) = stack.pop() {
        if !keep.insert(id) {
            continue;
        }
        for &c in lattice.children(id) {
            if !keep.contains(&c) {
                stack.push(c);
            }
        }
    }

    let nodes: Vec<NodeId> = lattice.all_nodes().filter(|id| keep.contains(id)).collect();
    stats.pruned_nodes = nodes.len();
    let dense: HashMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let levels: Vec<u32> = nodes.iter().map(|&id| lattice.level_of(id)).collect();

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, &id) in nodes.iter().enumerate() {
        for &c in lattice.children(id) {
            if let Some(&ci) = dense.get(&c) {
                children[i].push(ci);
                parents[ci].push(i);
            }
        }
    }

    let mut desc_plus: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for i in 0..nodes.len() {
        let mut d: Vec<usize> = vec![i];
        for &c in &children[i] {
            d.extend_from_slice(&desc_plus[c]);
        }
        d.sort_unstable();
        d.dedup();
        desc_plus[i] = d;
    }
    let mut asc_plus: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, descs) in desc_plus.iter().enumerate() {
        for &d in descs {
            asc_plus[d].push(i);
        }
    }
    for a in &mut asc_plus {
        a.sort_unstable();
    }

    let mut mtns: Vec<usize> = mtn_ids.iter().map(|id| dense[id]).collect();
    mtns.sort_unstable();
    for &m in &mtns {
        stats.mtn_descendants_total += desc_plus[m].len() - 1;
    }
    let mut uniq: Vec<usize> = mtns
        .iter()
        .flat_map(|&m| desc_plus[m].iter().copied().filter(move |&d| d != m))
        .collect();
    uniq.sort_unstable();
    uniq.dedup();
    stats.mtn_descendants_unique = uniq.len();

    NaivePruned { nodes, levels, children, parents, desc_plus, asc_plus, mtns, stats }
}

fn assert_same(fast: &PrunedLattice, slow: &NaivePruned, ctx: &str) {
    assert_eq!(fast.stats(), &slow.stats, "{ctx}: stats");
    assert_eq!(fast.len(), slow.nodes.len(), "{ctx}: node count");
    assert_eq!(fast.mtns(), slow.mtns.as_slice(), "{ctx}: MTN set");
    for i in 0..fast.len() {
        assert_eq!(fast.lattice_id(i), slow.nodes[i], "{ctx}: node {i}");
        assert_eq!(fast.level(i), slow.levels[i], "{ctx}: level {i}");
        assert_eq!(fast.children(i), slow.children[i].as_slice(), "{ctx}: children {i}");
        assert_eq!(fast.parents(i), slow.parents[i].as_slice(), "{ctx}: parents {i}");
        assert_eq!(fast.desc_plus(i), slow.desc_plus[i].as_slice(), "{ctx}: desc {i}");
        assert_eq!(fast.asc_plus(i), slow.asc_plus[i].as_slice(), "{ctx}: asc {i}");
        // Membership predicate matches the closure content both ways.
        for j in 0..fast.len() {
            assert_eq!(
                fast.is_desc_or_self(j, i),
                slow.desc_plus[i].binary_search(&j).is_ok(),
                "{ctx}: is_desc_or_self({j}, {i})"
            );
        }
    }
}

fn check_workload(lattice: &Lattice, index: &InvertedIndex, queries: &[&str], label: &str) {
    let mut ws = QueryWorkspace::new();
    let mut interps = 0usize;
    for q in queries {
        let Ok(parsed) = KeywordQuery::parse(q) else { continue };
        let mapping = map_keywords(&parsed, index);
        for (ii, interp) in mapping.interpretations.iter().enumerate() {
            let ctx = format!("{label} {q:?} interp {ii}");
            let slow = naive_build(lattice, interp);
            let fresh = PrunedLattice::build(lattice, interp);
            assert_same(&fresh, &slow, &ctx);
            // The pooled-workspace path must agree too (this is the path the
            // debugger takes in production).
            let reused = PrunedLattice::build_with(lattice, interp, &mut ws);
            assert_same(&reused, &slow, &format!("{ctx} (reused ws)"));
            interps += 1;
        }
    }
    assert!(interps > 0, "{label}: workload produced no interpretations");
}

#[test]
fn toydb_matches_naive_reference() {
    let db = product_database();
    let graph = SchemaGraph::new(&db);
    let index = InvertedIndex::build(&db);
    let queries = [
        "saffron scented candle",
        "red candle",
        "saffron",
        "candle holder",
        "red scented oil",
    ];
    for max_joins in [1, 2, 3] {
        let lattice = Lattice::build(&db, &graph, max_joins);
        check_workload(&lattice, &index, &queries, &format!("toydb mj={max_joins}"));
    }
}

#[test]
fn dblife_matches_naive_reference_across_seeds() {
    for seed in [DblifeConfig::tiny().seed, 1729] {
        let db = generate_dblife(&DblifeConfig { seed, ..DblifeConfig::tiny() });
        let graph = SchemaGraph::new(&db);
        let index = InvertedIndex::build(&db);
        let lattice = Lattice::build(&db, &graph, 3);
        let queries: Vec<&str> = paper_queries().iter().map(|q| q.text).collect();
        check_workload(&lattice, &index, &queries, &format!("dblife seed={seed}"));
    }
}
