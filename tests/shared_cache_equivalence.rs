//! Integration: the process-wide shared evaluation cache is observably
//! identical to uncached probing, across sessions.
//!
//! `kwdebug::evalcache::SharedEvalCache` extends the session-scoped cache
//! contract (see `probe_cache_equivalence.rs`) across sessions: any number
//! of debuggers built over one [`SharedParts`] with a shared store attached
//! must produce reports bit-identical to an uncached baseline, while probe
//! counts obey the shortcut identity
//!
//! ```text
//! probes_executed(shared) + subtree_cache_dead_shortcuts + verdict_cache_hits
//!     == probes_executed(off)
//! ```
//!
//! On top of equivalence this suite pins the shared store's own contracts:
//! the `cache_bytes` accounting identity (the gauge equals a full recount
//! over every shard), LRU eviction under a byte budget (bytes stay within
//! budget, evictions count, answers stay right), the generation-stamp
//! invalidation rule (a store from another database build is rejected), the
//! chaos-pollution guarantee (faulted sessions only ever publish completed
//! work), and output-invariance of the shared online `p_a` estimator.

use std::sync::Arc;

use datagen::{generate_dblife, paper_queries, DblifeConfig};
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::metrics::ProbeCounters;
use kwdebug::traversal::StrategyKind;
use kwdebug::DebugReport;
use relengine::FaultConfig;

const ALL_SIX: [StrategyKind; 6] = [
    StrategyKind::BottomUp,
    StrategyKind::TopDown,
    StrategyKind::BottomUpWithReuse,
    StrategyKind::TopDownWithReuse,
    StrategyKind::ScoreBasedHeuristic,
    StrategyKind::BruteForce,
];

fn tiny_system(config: DebugConfig) -> NonAnswerDebugger {
    NonAnswerDebugger::new(generate_dblife(&DblifeConfig::tiny()), config)
        .expect("system builds")
}

fn base_config() -> DebugConfig {
    DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() }
}

fn cached_config() -> DebugConfig {
    DebugConfig { eval_cache: true, ..base_config() }
}

/// Blanks the per-interpretation query count and wall clock of rendered
/// report lines — `(12 SQL queries, 1.3ms)` → `(q SQL queries, t)` — since
/// cache shortcuts legitimately shrink the executed-query count.
fn scrub(s: &str) -> String {
    s.lines()
        .map(|l| match l.find(" SQL queries, ") {
            Some(i) => match l[..i].rfind('(') {
                Some(j) => format!("{}(q SQL queries, t)", &l[..j]),
                None => l.to_string(),
            },
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Drops the counters that legitimately vary with the cache (and with
/// parallel scheduling); `probes_executed` is checked exactly through the
/// shortcut identity instead.
fn comparable(mut p: ProbeCounters) -> ProbeCounters {
    p.probe_time_ns = 0;
    p.tuples_scanned = 0;
    p.probes_executed = 0;
    p.selection_cache_hits = 0;
    p.subtree_cache_hits = 0;
    p.subtree_cache_dead_shortcuts = 0;
    p.verdict_cache_hits = 0;
    p.cache_bytes = 0;
    p.workers = 0;
    p.steals = 0;
    p
}

/// Asserts a shared-cache report is observably identical to the uncached
/// baseline, probe counts included (via the shortcut identity).
fn assert_shared_equivalent(off: &DebugReport, on: &DebugReport, ctx: &str) {
    assert_eq!(scrub(&on.to_string()), scrub(&off.to_string()), "{ctx}: rendered report");
    assert_eq!(on.interpretations.len(), off.interpretations.len(), "{ctx}");
    for (a, b) in on.interpretations.iter().zip(&off.interpretations) {
        assert_eq!(a.answers, b.answers, "{ctx}: answers (SQL + samples)");
        assert_eq!(a.non_answers, b.non_answers, "{ctx}: non-answers + MPANs");
        assert_eq!(a.unknown, b.unknown, "{ctx}: unknown");
        assert_eq!(a.budget_exhausted, b.budget_exhausted, "{ctx}: exhaustion cause");
        assert_eq!(comparable(a.probes), comparable(b.probes), "{ctx}: probe counters");
        assert_eq!(
            a.probes.probes_executed
                + a.probes.subtree_cache_dead_shortcuts
                + a.probes.verdict_cache_hits,
            b.probes.probes_executed,
            "{ctx}: every skipped probe is accounted as a shortcut"
        );
        assert_eq!(
            a.sql_queries + a.probes.subtree_cache_dead_shortcuts + a.probes.verdict_cache_hits,
            b.sql_queries,
            "{ctx}: traversal query counts obey the same identity"
        );
    }
}

/// Sessions sharing one store match the uncached baseline for every
/// strategy and worker count — and the *second* session visibly rides on
/// the first one's work.
#[test]
fn shared_sessions_match_uncached_baseline() {
    let off = tiny_system(base_config());
    let seeded = tiny_system(cached_config());
    let mut parts = seeded.shared_parts();
    let shared = parts.share_eval_cache(None);

    let s1 = NonAnswerDebugger::from_shared(parts.clone(), cached_config()).expect("session 1");
    let mut s2 = NonAnswerDebugger::from_shared(parts, cached_config()).expect("session 2");
    let mut verdict_hits = 0u64;
    for q in paper_queries().iter().take(3) {
        for kind in ALL_SIX {
            let base = off.debug_with_strategy(q.text, kind).expect("baseline runs");
            let first = s1.debug_with_strategy(q.text, kind).expect("session 1 runs");
            assert_shared_equivalent(&base, &first, &format!("{} {kind} s1", q.id));
            for workers in [1usize, 4] {
                s2.set_workers(workers);
                let second = s2.debug_with_strategy(q.text, kind).expect("session 2 runs");
                assert_shared_equivalent(
                    &base,
                    &second,
                    &format!("{} {kind} s2 w={workers}", q.id),
                );
                verdict_hits += second.probes().verdict_cache_hits;
            }
        }
    }
    assert!(
        verdict_hits > 0,
        "the second session must answer repeats from the first session's verdicts"
    );
    assert!(shared.bytes() > 0, "the shared store was populated");
    assert_eq!(
        shared.bytes(),
        shared.handle().accounted_bytes(),
        "cache_bytes gauge must equal a full recount over every shard"
    );
}

/// A byte budget is enforced by LRU eviction: the store stays within
/// budget, evictions are counted, the accounting identity survives churn,
/// and answers never change.
#[test]
fn byte_budget_evicts_without_changing_answers() {
    let off = tiny_system(base_config());
    let seeded = tiny_system(cached_config());
    let mut parts = seeded.shared_parts();
    const BUDGET: u64 = 256;
    let shared = parts.share_eval_cache(Some(BUDGET));
    let session = NonAnswerDebugger::from_shared(parts, cached_config()).expect("session");

    for q in paper_queries().iter().take(5) {
        let base = off.debug(q.text).expect("baseline runs");
        let capped = session.debug(q.text).expect("budgeted session runs");
        assert_shared_equivalent(&base, &capped, &format!("{} budget={BUDGET}", q.id));
        assert!(
            shared.bytes() <= BUDGET,
            "{}: resident {} exceeds budget {BUDGET}",
            q.id,
            shared.bytes()
        );
        assert_eq!(
            shared.bytes(),
            shared.handle().accounted_bytes(),
            "{}: accounting identity must survive eviction churn",
            q.id
        );
    }
    assert!(shared.evictions() > 0, "a 256-byte budget must force evictions on this workload");
}

/// A shared store is stamped with its substrate's database generation; a
/// substrate of another build must refuse to adopt it.
#[test]
fn generation_mismatch_is_rejected() {
    let a = tiny_system(cached_config());
    let b = tiny_system(cached_config());
    let mut parts_a = a.shared_parts();
    let cache_a = parts_a.share_eval_cache(None);
    let mut parts_b = b.shared_parts();
    assert!(
        parts_b.adopt_eval_cache(cache_a.clone()).is_err(),
        "a store from another database build must be rejected"
    );
    // Same-substrate adoption (e.g. via a clone) is fine.
    let mut parts_a2 = a.shared_parts();
    parts_a2.adopt_eval_cache(cache_a).expect("same-generation adoption succeeds");
}

/// A session degraded by probe-level chaos faults shares a store with a
/// clean session: failed probes abort before execution, so everything the
/// chaotic session published is completed work and the clean session's
/// reports stay bit-identical to an untouched reference.
#[test]
fn chaos_sessions_never_pollute_the_shared_store() {
    let reference = tiny_system(base_config());
    let seeded = tiny_system(cached_config());
    let mut parts = seeded.shared_parts();
    let shared = parts.share_eval_cache(None);

    let mut chaotic = NonAnswerDebugger::from_shared(parts.clone(), cached_config())
        .expect("chaotic session");
    chaotic.set_chaos(Some(FaultConfig::transient(7, 300)));
    for q in paper_queries().iter().take(3) {
        chaotic.debug(q.text).expect("chaotic run never hard-errors");
    }
    assert!(shared.bytes() > 0, "the degraded session still cached completed work");

    let clean = NonAnswerDebugger::from_shared(parts, cached_config()).expect("clean session");
    for q in paper_queries().iter().take(3) {
        let base = reference.debug(q.text).expect("reference runs");
        let warmed = clean.debug(q.text).expect("clean session runs");
        assert_shared_equivalent(&base, &warmed, &format!("{} post-chaos", q.id));
    }
}

/// The shared online `p_a` estimator only reorders SBH's frontier; sessions
/// with `online_pa` on (sharing both the store and the estimator) keep
/// reports identical to the fixed-prior uncached baseline.
#[test]
fn online_pa_sessions_keep_outputs_identical() {
    let off = tiny_system(base_config());
    let seeded = tiny_system(cached_config());
    let mut parts = seeded.shared_parts();
    parts.share_eval_cache(None);
    let online_config = DebugConfig { online_pa: true, ..cached_config() };

    let s1 = NonAnswerDebugger::from_shared(parts.clone(), online_config)
        .expect("session 1");
    let s2 = NonAnswerDebugger::from_shared(parts, online_config).expect("session 2");
    for q in paper_queries().iter().take(3) {
        let base = off.debug(q.text).expect("baseline runs");
        let first = s1.debug(q.text).expect("session 1 runs");
        assert_shared_equivalent(&base, &first, &format!("{} online s1", q.id));
        let second = s2.debug(q.text).expect("session 2 runs");
        assert_shared_equivalent(&base, &second, &format!("{} online s2", q.id));
    }
    assert!(
        Arc::ptr_eq(s1.pa_stats(), s2.pa_stats()),
        "sessions share one estimator through the substrate"
    );
    assert!(s1.pa_stats().observations() > 0, "executed verdicts fed the estimator");
}
