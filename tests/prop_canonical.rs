//! Property tests for canonical labeling (Algorithm 2).
//!
//! A canonical labeling must be invariant under how a tree is *presented*:
//! any extension order producing an isomorphic copy-labeled tree must yield
//! the same label. The generator grows a random tree, then rebuilds it by
//! re-rooting at a random vertex and re-attaching edges in a shuffled order —
//! a presentation-level isomorphism — and asserts label equality. A second
//! property asserts that changing any vertex's copy index changes the label.

use proptest::prelude::*;

use kwdebug::canonical::canonical_label;
use kwdebug::jnts::{Jnts, TupleSet};
use kwdebug::schema_graph::Incidence;

/// Specification of a random tree: vertex labels plus for each vertex i >= 1
/// an attachment (parent < i, fk, direction).
#[derive(Debug, Clone)]
struct TreeSpec {
    vertices: Vec<(usize, u8)>,            // (table, copy)
    attach: Vec<(usize, usize, bool)>,     // (parent index, fk, parent_is_from)
}

fn tree_spec(max_n: usize) -> impl Strategy<Value = TreeSpec> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let vertices = proptest::collection::vec((0usize..4, 0u8..3), n..=n);
            let attach = proptest::collection::vec((0usize..n, 0usize..3, any::<bool>()), n - 1..=n - 1);
            (vertices, attach)
        })
        .prop_map(|(vertices, mut attach)| {
            // Parent of vertex i must be < i.
            for (i, a) in attach.iter_mut().enumerate() {
                a.0 %= i + 1;
            }
            TreeSpec { vertices, attach }
        })
}

fn build(spec: &TreeSpec) -> Jnts {
    let mut j = Jnts::single(TupleSet::new(spec.vertices[0].0, spec.vertices[0].1));
    for (i, &(parent, fk, parent_is_from)) in spec.attach.iter().enumerate() {
        let child = spec.vertices[i + 1];
        j = j.extend(
            parent,
            Incidence { fk, other: child.0, local_is_from: parent_is_from },
            child.1,
        );
    }
    j
}

/// Rebuilds the same tree starting from `root`, attaching edges outward in
/// BFS order — a different presentation of the identical labeled tree.
fn rebuild_from(j: &Jnts, root: usize) -> Jnts {
    let n = j.node_count();
    let mut new = Jnts::single(j.nodes()[root]);
    let mut placed = vec![usize::MAX; n]; // old index -> new index
    placed[root] = 0;
    let mut frontier = vec![root];
    while let Some(u) = frontier.pop() {
        for e in j.edges() {
            let (a, b) = (e.a as usize, e.b as usize);
            let (other, local_is_from) = if a == u {
                (b, e.a_is_from)
            } else if b == u {
                (a, !e.a_is_from)
            } else {
                continue;
            };
            if placed[other] != usize::MAX {
                continue;
            }
            let at = placed[u];
            new = new.extend(
                at,
                Incidence {
                    fk: e.fk,
                    other: j.nodes()[other].table,
                    local_is_from,
                },
                j.nodes()[other].copy,
            );
            placed[other] = new.node_count() - 1;
            frontier.push(other);
        }
    }
    new
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn label_invariant_under_rerooting(spec in tree_spec(7), root_pick in any::<usize>()) {
        let j = build(&spec);
        prop_assert!(j.validate());
        let root = root_pick % j.node_count();
        let rebuilt = rebuild_from(&j, root);
        prop_assert!(rebuilt.validate());
        prop_assert_eq!(canonical_label(&j), canonical_label(&rebuilt));
    }

    #[test]
    fn label_changes_when_a_copy_changes(spec in tree_spec(6), pick in any::<usize>()) {
        let j = build(&spec);
        let v = pick % j.node_count();
        // Bump one vertex's copy index to a value outside the generator's
        // range, producing a definitely-different labeled tree.
        let mut spec2 = spec.clone();
        spec2.vertices[v].1 = 9;
        let j2 = build(&spec2);
        prop_assert_ne!(canonical_label(&j), canonical_label(&j2));
    }

    #[test]
    fn label_is_stable(spec in tree_spec(7)) {
        let j = build(&spec);
        prop_assert_eq!(canonical_label(&j), canonical_label(&j));
    }
}
