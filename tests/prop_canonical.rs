//! Randomized tests for canonical labeling (Algorithm 2).
//!
//! A canonical labeling must be invariant under how a tree is *presented*:
//! any extension order producing an isomorphic copy-labeled tree must yield
//! the same label. The generator grows a random tree, then rebuilds it by
//! re-rooting at a random vertex and re-attaching edges in a shuffled order —
//! a presentation-level isomorphism — and asserts label equality. A second
//! property asserts that changing any vertex's copy index changes the label.
//!
//! Cases are drawn from a seeded [`SplitMix64`] stream (the registry-free
//! stand-in for proptest), so every run replays the same tree population.

use datagen::rng::SplitMix64;
use kwdebug::canonical::canonical_label;
use kwdebug::jnts::{Jnts, TupleSet};
use kwdebug::schema_graph::Incidence;

/// Specification of a random tree: vertex labels plus for each vertex i >= 1
/// an attachment (parent < i, fk, direction).
#[derive(Debug, Clone)]
struct TreeSpec {
    vertices: Vec<(usize, u8)>,        // (table, copy)
    attach: Vec<(usize, usize, bool)>, // (parent index, fk, parent_is_from)
}

fn tree_spec(rng: &mut SplitMix64, max_n: usize) -> TreeSpec {
    let n = rng.gen_range(2..=max_n);
    let vertices: Vec<(usize, u8)> =
        (0..n).map(|_| (rng.gen_range(0..4usize), rng.below(3) as u8)).collect();
    let attach: Vec<(usize, usize, bool)> = (1..n)
        .map(|i| (rng.gen_range(0..i), rng.gen_range(0..3usize), rng.below(2) == 1))
        .collect();
    TreeSpec { vertices, attach }
}

fn build(spec: &TreeSpec) -> Jnts {
    let mut j = Jnts::single(TupleSet::new(spec.vertices[0].0, spec.vertices[0].1));
    for (i, &(parent, fk, parent_is_from)) in spec.attach.iter().enumerate() {
        let child = spec.vertices[i + 1];
        j = j.extend(
            parent,
            Incidence { fk, other: child.0, local_is_from: parent_is_from },
            child.1,
        );
    }
    j
}

/// Rebuilds the same tree starting from `root`, attaching edges outward in
/// BFS order — a different presentation of the identical labeled tree.
fn rebuild_from(j: &Jnts, root: usize) -> Jnts {
    let n = j.node_count();
    let mut new = Jnts::single(j.nodes()[root]);
    let mut placed = vec![usize::MAX; n]; // old index -> new index
    placed[root] = 0;
    let mut frontier = vec![root];
    while let Some(u) = frontier.pop() {
        for e in j.edges() {
            let (a, b) = (e.a as usize, e.b as usize);
            let (other, local_is_from) = if a == u {
                (b, e.a_is_from)
            } else if b == u {
                (a, !e.a_is_from)
            } else {
                continue;
            };
            if placed[other] != usize::MAX {
                continue;
            }
            let at = placed[u];
            new = new.extend(
                at,
                Incidence { fk: e.fk, other: j.nodes()[other].table, local_is_from },
                j.nodes()[other].copy,
            );
            placed[other] = new.node_count() - 1;
            frontier.push(other);
        }
    }
    new
}

#[test]
fn label_invariant_under_rerooting() {
    let mut rng = SplitMix64::seed_from_u64(0xCA01);
    for case in 0..128 {
        let spec = tree_spec(&mut rng, 7);
        let j = build(&spec);
        assert!(j.validate(), "case {case}: {spec:?}");
        let root = rng.gen_range(0..j.node_count());
        let rebuilt = rebuild_from(&j, root);
        assert!(rebuilt.validate(), "case {case}: {spec:?}");
        assert_eq!(
            canonical_label(&j),
            canonical_label(&rebuilt),
            "case {case}, root {root}: {spec:?}"
        );
    }
}

#[test]
fn label_changes_when_a_copy_changes() {
    let mut rng = SplitMix64::seed_from_u64(0xCA02);
    for case in 0..128 {
        let spec = tree_spec(&mut rng, 6);
        let j = build(&spec);
        let v = rng.gen_range(0..j.node_count());
        // Bump one vertex's copy index to a value outside the generator's
        // range, producing a definitely-different labeled tree.
        let mut spec2 = spec.clone();
        spec2.vertices[v].1 = 9;
        let j2 = build(&spec2);
        assert_ne!(
            canonical_label(&j),
            canonical_label(&j2),
            "case {case}, vertex {v}: {spec:?}"
        );
    }
}

#[test]
fn label_is_stable() {
    let mut rng = SplitMix64::seed_from_u64(0xCA03);
    for case in 0..128 {
        let spec = tree_spec(&mut rng, 7);
        let j = build(&spec);
        assert_eq!(canonical_label(&j), canonical_label(&j), "case {case}: {spec:?}");
    }
}
