//! Integration: the paper's Example 1 on the Figure 2 database, verbatim.
//!
//! "saffron scented candle" must map (among its interpretations) to the two
//! structured queries the paper analyzes, both dead, each explained by
//! exactly the maximal alive sub-queries the paper lists.

use datagen::product_database;
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::report::InterpretationOutcome;
use kwdebug::traversal::StrategyKind;

fn debugger(strategy: StrategyKind) -> NonAnswerDebugger {
    NonAnswerDebugger::new(
        product_database(),
        DebugConfig { max_joins: 2, strategy, sample_limit: 0, ..DebugConfig::default() },
    )
    .expect("toy system builds")
}

fn find_interpretation<'a>(
    report: &'a kwdebug::DebugReport,
    saffron_table: &str,
) -> &'a InterpretationOutcome {
    report
        .interpretations
        .iter()
        .find(|i| {
            i.keyword_tables.contains(&("saffron".to_owned(), saffron_table.to_owned()))
                && i.keyword_tables.contains(&("scented".to_owned(), "item".to_owned()))
                && i.keyword_tables.contains(&("candle".to_owned(), "ptype".to_owned()))
        })
        .expect("paper interpretation present")
}

#[test]
fn q1_color_interpretation_matches_paper() {
    let report = debugger(StrategyKind::ScoreBasedHeuristic)
        .debug("saffron scented candle")
        .expect("query runs");
    let q1 = find_interpretation(&report, "color");
    assert!(q1.answers.is_empty(), "q1 must be a non-answer");
    assert_eq!(q1.non_answers.len(), 1);
    let mpans = &q1.non_answers[0].mpans;
    assert_eq!(mpans.len(), 2, "paper reports exactly two maximal sub-queries");
    let sqls: Vec<&str> = mpans.iter().map(|m| m.sql.as_str()).collect();
    // P_candle ⋈ I_scented
    assert!(
        sqls.iter().any(|s| s.contains("%candle%") && s.contains("%scented%")),
        "missing P_candle ⋈ I_scented in {sqls:?}"
    );
    // C_saffron alone (level 1)
    assert!(
        mpans
            .iter()
            .any(|m| m.level == 1 && m.sql.contains("color") && m.sql.contains("%saffron%")),
        "missing C_saffron in {sqls:?}"
    );
}

#[test]
fn q2_attribute_interpretation_matches_paper() {
    let report = debugger(StrategyKind::ScoreBasedHeuristic)
        .debug("saffron scented candle")
        .expect("query runs");
    let q2 = find_interpretation(&report, "attribute");
    assert!(q2.answers.is_empty(), "q2 must be a non-answer");
    assert_eq!(q2.non_answers.len(), 1);
    let mpans = &q2.non_answers[0].mpans;
    assert_eq!(mpans.len(), 2);
    // P_candle ⋈ I_scented and I_scented ⋈ A_saffron, both at level 2.
    assert!(mpans.iter().all(|m| m.level == 2));
    assert!(mpans
        .iter()
        .any(|m| m.sql.contains("%candle%") && m.sql.contains("%scented%")));
    assert!(mpans
        .iter()
        .any(|m| m.sql.contains("attribute") && m.sql.contains("%saffron%") && m.sql.contains("%scented%")));
}

#[test]
fn every_strategy_reproduces_example1() {
    let reference = debugger(StrategyKind::BruteForce)
        .debug("saffron scented candle")
        .expect("query runs");
    for kind in StrategyKind::ALL {
        let report = debugger(kind).debug("saffron scented candle").expect("query runs");
        assert_eq!(report.answer_count(), reference.answer_count(), "{kind}");
        assert_eq!(report.non_answer_count(), reference.non_answer_count(), "{kind}");
        assert_eq!(report.mpan_count(), reference.mpan_count(), "{kind}");
        // MPAN SQL sets must match interpretation by interpretation.
        for (a, b) in report.interpretations.iter().zip(&reference.interpretations) {
            let mut sa: Vec<&String> =
                a.non_answers.iter().flat_map(|n| n.mpans.iter().map(|m| &m.sql)).collect();
            let mut sb: Vec<&String> =
                b.non_answers.iter().flat_map(|n| n.mpans.iter().map(|m| &m.sql)).collect();
            sa.sort();
            sb.sort();
            assert_eq!(sa, sb, "{kind}");
        }
    }
}

#[test]
fn red_candle_is_an_answer_query() {
    // Figure 2 carries a "red checkered candle": "red candle" has answers.
    let report =
        debugger(StrategyKind::TopDownWithReuse).debug("red candle").expect("query runs");
    assert!(report.answer_count() > 0);
}

#[test]
fn unknown_keyword_reported_and_nothing_explored() {
    let report =
        debugger(StrategyKind::BottomUp).debug("saffron hovercraft").expect("query runs");
    assert_eq!(report.unknown_keywords, vec!["hovercraft"]);
    assert_eq!(report.sql_queries(), 0);
    assert!(report.interpretations.is_empty());
}

#[test]
fn incense_exists_but_no_scented_incense() {
    // "incense" occurs (product type 3) but no item references it: the MTN
    // ptype_incense ⋈ item_scented is dead, explained by both sides alive.
    let report = debugger(StrategyKind::ScoreBasedHeuristic)
        .debug("scented incense")
        .expect("query runs");
    assert_eq!(report.answer_count(), 0);
    assert!(report.non_answer_count() > 0);
    let interp = report
        .interpretations
        .iter()
        .find(|i| i.keyword_tables.contains(&("incense".to_owned(), "ptype".to_owned())))
        .expect("ptype interpretation");
    let mpans = &interp.non_answers[0].mpans;
    // Frontier: incense exists (level 1) and scented items exist (level 1).
    assert!(mpans.iter().any(|m| m.sql.contains("%incense%") && m.level == 1));
    assert!(mpans.iter().any(|m| m.sql.contains("%scented%")));
}
