//! Integration: the parallel probe scheduler is observably identical to the
//! sequential driver.
//!
//! The contract of `kwdebug::parallel` (DESIGN.md §8) is that `workers`
//! changes wall-clock and nothing else: for every strategy, database and
//! budget, a parallel debug run must produce the same rendered report, the
//! same answer/non-answer/unknown structure, and the same probe counters as
//! `workers = 1` — including the partial results of a traversal cut short
//! by a probe budget mid-wave. Only `probe_time_ns` and the parallel-only
//! `workers`/`steals` counters may differ.
//!
//! Budgets here are probe-count caps only: deadline and tuple-scan caps
//! trip on wall-clock and scan order, which are inherently timing-dependent
//! under concurrency (chaos runs are covered by the soundness smoke at the
//! bottom, not by equivalence).

use datagen::{generate_dblife, paper_queries, product_database, DblifeConfig};
use kwdebug::budget::ProbeBudget;
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::metrics::ProbeCounters;
use kwdebug::traversal::StrategyKind;
use kwdebug::DebugReport;
use relengine::FaultConfig;

const ALL_SIX: [StrategyKind; 6] = [
    StrategyKind::BottomUp,
    StrategyKind::TopDown,
    StrategyKind::BottomUpWithReuse,
    StrategyKind::TopDownWithReuse,
    StrategyKind::ScoreBasedHeuristic,
    StrategyKind::BruteForce,
];

/// Blanks the wall-clock portion of rendered report lines.
fn scrub(s: &str) -> String {
    s.lines()
        .map(|l| match l.find(" SQL queries, ") {
            Some(i) => format!("{} SQL queries, (t)", &l[..i]),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Drops the counters that legitimately vary with the worker count.
fn timeless(mut p: ProbeCounters) -> ProbeCounters {
    p.probe_time_ns = 0;
    p.workers = 0;
    p.steals = 0;
    p
}

/// Asserts a parallel report is observably identical to the sequential one.
fn assert_equivalent(seq: &DebugReport, par: &DebugReport, ctx: &str) {
    assert_eq!(scrub(&par.to_string()), scrub(&seq.to_string()), "{ctx}: rendered report");
    assert_eq!(par.interpretations.len(), seq.interpretations.len(), "{ctx}");
    for (p, s) in par.interpretations.iter().zip(&seq.interpretations) {
        assert_eq!(p.answers, s.answers, "{ctx}: answers");
        assert_eq!(p.non_answers, s.non_answers, "{ctx}: non-answers");
        assert_eq!(p.unknown, s.unknown, "{ctx}: unknown");
        assert_eq!(p.budget_exhausted, s.budget_exhausted, "{ctx}: exhaustion cause");
        assert_eq!(p.sql_queries, s.sql_queries, "{ctx}: query count");
        assert_eq!(timeless(p.probes), timeless(s.probes), "{ctx}: probe counters");
    }
    // Wave independence means a parallel run never executes a probe that
    // same-wave inference could have answered.
    assert_eq!(par.probes().inference_suppressed_probes, 0, "{ctx}: suppressed probes");
    assert!(par.probes().probes_executed <= seq.probes().probes_executed, "{ctx}");
}

/// Every strategy × workers ∈ {2, 4} on the paper's Figure 2 toy store,
/// with and without memoization (the sharded memo path).
#[test]
fn toydb_reports_match_sequential_for_every_strategy() {
    for memoize in [false, true] {
        let mut sys = NonAnswerDebugger::new(
            product_database(),
            DebugConfig { max_joins: 2, sample_limit: 0, memoize, ..DebugConfig::default() },
        )
        .expect("toy system builds");
        for kind in ALL_SIX {
            sys.set_workers(1);
            let seq = sys.debug_with_strategy("saffron scented candle", kind).expect("runs");
            for workers in [2, 4] {
                sys.set_workers(workers);
                let par =
                    sys.debug_with_strategy("saffron scented candle", kind).expect("runs");
                assert_equivalent(&seq, &par, &format!("toydb {kind} w={workers} memo={memoize}"));
            }
        }
    }
}

/// Every strategy × workers ∈ {2, 4} over seeded DBLife instances and a
/// slice of the paper's Table 2 workload.
#[test]
fn dblife_reports_match_sequential_across_seeds() {
    for seed in [DblifeConfig::tiny().seed, 99] {
        let mut sys = NonAnswerDebugger::new(
            generate_dblife(&DblifeConfig { seed, ..DblifeConfig::tiny() }),
            DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() },
        )
        .expect("system builds");
        for q in paper_queries().iter().take(3) {
            for kind in ALL_SIX {
                sys.set_workers(1);
                let seq = sys.debug_with_strategy(q.text, kind).expect("runs");
                for workers in [2, 4] {
                    sys.set_workers(workers);
                    let par = sys.debug_with_strategy(q.text, kind).expect("runs");
                    assert_equivalent(
                        &seq,
                        &par,
                        &format!("dblife seed={seed} {} {kind} w={workers}", q.id),
                    );
                }
            }
        }
    }
}

/// A probe budget that trips mid-traversal must stop the parallel run at
/// exactly the same probe as the sequential one: identical partial reports,
/// identical `unknown` sets, the trip counted once.
#[test]
fn tight_probe_budgets_cut_identically() {
    let mut sys = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() },
    )
    .expect("system builds");
    for cap in [0, 1, 3, 7] {
        sys.set_budget(ProbeBudget::probes(cap));
        for kind in ALL_SIX {
            sys.set_workers(1);
            let seq = sys.debug_with_strategy("Widom Trio", kind).expect("runs");
            for workers in [2, 4] {
                sys.set_workers(workers);
                let par = sys.debug_with_strategy("Widom Trio", kind).expect("runs");
                let ctx = format!("budget={cap} {kind} w={workers}");
                assert_equivalent(&seq, &par, &ctx);
                if cap == 0 {
                    assert!(!par.is_complete(), "{ctx}: zero budget must degrade");
                    assert_eq!(par.sql_queries(), 0, "{ctx}");
                }
            }
        }
    }
}

/// Chaos + parallelism is soundness-only: per-worker fault schedules differ
/// from the sequential engine's, so reports may legitimately differ — but
/// the run must stay sound (no panic, no hard error, counters consistent
/// with the engine, only fault-degraded omissions).
#[test]
fn chaos_under_parallelism_stays_sound() {
    let mut sys = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() },
    )
    .expect("system builds");
    sys.set_chaos(Some(FaultConfig::transient(7, 300)));
    let complete = {
        let mut clean = NonAnswerDebugger::new(
            generate_dblife(&DblifeConfig::tiny()),
            DebugConfig { max_joins: 3, sample_limit: 0, ..DebugConfig::default() },
        )
        .expect("system builds");
        clean.set_workers(4);
        clean.debug("Widom Trio").expect("clean run")
    };
    for workers in [2, 4] {
        sys.set_workers(workers);
        let r = sys.debug("Widom Trio").expect("chaotic parallel run never hard-errors");
        let p = r.probes();
        assert_eq!(p.probes_executed, r.sql_queries(), "w={workers}: counters mirror engine");
        // Soundness: everything the degraded run classifies, the clean run
        // agrees with (it can only *miss* classifications, never invent).
        assert!(r.answer_count() <= complete.answer_count(), "w={workers}");
        assert!(r.non_answer_count() <= complete.non_answer_count(), "w={workers}");
    }
}
