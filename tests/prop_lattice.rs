//! Randomized tests for lattice generation (Algorithm 1).
//!
//! Structural invariants over lattices built from random-sized DBLife-style
//! schemas and the toy schema:
//!
//! * **closure under sub-networks**: removing any leaf of any lattice node
//!   yields a network that is itself in the lattice, linked as a child;
//! * **dedup soundness**: no two nodes share a canonical label;
//! * **link symmetry**: parents/children are mutual and one level apart;
//! * **copy discipline**: keyword copies never repeat within a network, and
//!   text-less relations only ever appear as free copies.
//!
//! Random schemas are drawn from a seeded [`SplitMix64`] stream (the
//! registry-free stand-in for proptest), so every run checks the same
//! schema population.

use datagen::product_database;
use datagen::rng::SplitMix64;
use kwdebug::canonical::canonical_label;
use kwdebug::lattice::Lattice;
use kwdebug::SchemaGraph;
use std::collections::{HashMap, HashSet};

fn check_lattice_invariants(lattice: &Lattice, graph: &SchemaGraph) {
    // Dedup soundness + index for the closure check.
    let mut by_label: HashMap<String, u32> = HashMap::new();
    for id in lattice.all_nodes() {
        let label = canonical_label(lattice.jnts(id));
        assert!(
            by_label.insert(label, id).is_none(),
            "two lattice nodes share a canonical label"
        );
    }

    for id in lattice.all_nodes() {
        let jnts = lattice.jnts(id);
        assert!(jnts.validate(), "node {id} is not a tree");
        assert_eq!(jnts.node_count() as u32, lattice.level_of(id));

        // Copy discipline.
        let mut seen: HashSet<(usize, u8)> = HashSet::new();
        for ts in jnts.nodes() {
            if ts.copy > 0 {
                assert!(graph.has_text(ts.table), "keyword copy of text-less table");
                assert!(seen.insert((ts.table, ts.copy)), "repeated keyword copy");
            }
        }

        // Link symmetry.
        for &c in lattice.children(id) {
            assert_eq!(lattice.level_of(c) + 1, lattice.level_of(id));
            assert!(lattice.parents(c).contains(&id));
        }
        for &p in lattice.parents(id) {
            assert_eq!(lattice.level_of(p), lattice.level_of(id) + 1);
            assert!(lattice.children(p).contains(&id));
        }

        // Postings index agrees with network membership.
        for ts in jnts.nodes() {
            assert!(
                lattice.postings(ts.table, ts.copy).binary_search(&id).is_ok(),
                "node {id} missing from postings({}, {})",
                ts.table,
                ts.copy
            );
        }

        // Free-leaf flag agrees with structure.
        let expect_free_leaf = jnts.node_count() > 1
            && jnts.leaves().iter().any(|&l| jnts.nodes()[l].is_free());
        assert_eq!(lattice.has_free_leaf(id), expect_free_leaf, "node {id}");

        // Closure under leaf removal: every maximal sub-network exists and
        // is linked as a child.
        if jnts.node_count() > 1 {
            for leaf in jnts.leaves() {
                let sub = jnts.remove_leaf(leaf);
                let label = canonical_label(&sub);
                let child = by_label
                    .get(&label)
                    .unwrap_or_else(|| panic!("sub-network of node {id} missing from lattice"));
                assert!(
                    lattice.children(id).contains(child),
                    "sub-network present but not linked as child"
                );
            }
        }
    }
}

#[test]
fn toydb_lattice_invariants() {
    let db = product_database();
    let graph = SchemaGraph::new(&db);
    for max_joins in 1..=3 {
        let lattice = Lattice::build(&db, &graph, max_joins);
        check_lattice_invariants(&lattice, &graph);
    }
}

/// Random schema: `n_ent` text entities, key-pair relationships wiring
/// random entity pairs.
#[test]
fn random_schema_lattice_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x1A01);
    for _case in 0..12 {
        let n_ent = rng.gen_range(1..4usize);
        let n_rel = rng.gen_range(1..5usize);
        let wiring: Vec<(usize, usize)> = (0..n_rel)
            .map(|_| (rng.gen_range(0..n_ent), rng.gen_range(0..n_ent)))
            .collect();
        let max_joins = rng.gen_range(1..4usize);

        let mut b = relengine::DatabaseBuilder::new();
        for e in 0..n_ent {
            b.table(&format!("ent{e}"))
                .column("id", relengine::DataType::Int)
                .column("name", relengine::DataType::Text)
                .primary_key("id");
        }
        for (ri, (a, z)) in wiring.iter().enumerate() {
            let name = format!("rel{ri}");
            b.table(&name)
                .column("a_id", relengine::DataType::Int)
                .column("b_id", relengine::DataType::Int);
            b.foreign_key(&name, "a_id", &format!("ent{a}"), "id").expect("declared");
            b.foreign_key(&name, "b_id", &format!("ent{z}"), "id").expect("declared");
        }
        let db = b.finish().expect("schema builds");
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        check_lattice_invariants(&lattice, &graph);
    }
}
