//! Integration: the adoption path — load a catalog from CSV, debug it.
//!
//! A downstream user's data arrives as CSV files; this test exercises the
//! full flow: declare a schema, `load_csv` each table, build the debugger,
//! and get the same non-answer explanation the hand-built database gives.

use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::traversal::StrategyKind;
use relengine::{load_csv, dump_csv, DataType, Database, DatabaseBuilder};

fn schema() -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("ptype")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .primary_key("id");
    b.table("color")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .primary_key("id");
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("ptype_id", DataType::Int)
        .column("color_id", DataType::Int)
        .primary_key("id");
    b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
    b.foreign_key("item", "color_id", "color", "id").expect("static");
    b.finish().expect("static schema")
}

const PTYPE_CSV: &str = "id,name\n1,candle\n2,oil\n";
const COLOR_CSV: &str = "id,name\n1,saffron\n2,red\n";
const ITEM_CSV: &str = "\
id,name,ptype_id,color_id
1,\"pillar, scented\",1,2
2,fragrant drops,2,1
3,tea light,1,2
4,mystery blob,2,
";

#[test]
fn csv_loaded_catalog_debugs_like_the_handbuilt_one() {
    let mut db = schema();
    assert_eq!(load_csv(&mut db, "ptype", PTYPE_CSV).expect("loads"), 2);
    assert_eq!(load_csv(&mut db, "color", COLOR_CSV).expect("loads"), 2);
    assert_eq!(load_csv(&mut db, "item", ITEM_CSV).expect("loads"), 4);
    db.finalize();
    db.check_integrity().expect("CSV data is referentially intact");
    // Row 4 has a NULL color (empty CSV field).
    let item = db.table(db.table_id("item").expect("schema"));
    assert!(item.row(3)[3].is_null());

    let debugger = NonAnswerDebugger::new(
        db,
        DebugConfig {
            max_joins: 2,
            strategy: StrategyKind::ScoreBasedHeuristic,
            sample_limit: 0,
            ..DebugConfig::default()
        },
    )
    .expect("system builds");

    // No saffron candle in this catalog either.
    let report = debugger.debug("saffron candle").expect("query runs");
    assert_eq!(report.answer_count(), 0);
    assert!(report.non_answer_count() > 0);
    let mpans = &report.interpretations[0].non_answers[0].mpans;
    assert_eq!(mpans.len(), 2, "candles exist, saffron exists");

    // But scented things do exist ("pillar, scented" survived CSV quoting).
    let report = debugger.debug("scented candle").expect("query runs");
    assert!(report.answer_count() > 0);
}

#[test]
fn dump_round_trips_through_the_debugger() {
    let mut db = schema();
    load_csv(&mut db, "ptype", PTYPE_CSV).expect("loads");
    load_csv(&mut db, "color", COLOR_CSV).expect("loads");
    load_csv(&mut db, "item", ITEM_CSV).expect("loads");
    db.finalize();

    // Dump every table and reload into a fresh schema.
    let mut copy = schema();
    for t in ["ptype", "color", "item"] {
        let csv = dump_csv(&db, t).expect("dumps");
        load_csv(&mut copy, t, &csv).expect("reloads");
    }
    copy.finalize();

    let a = NonAnswerDebugger::new(db, DebugConfig { max_joins: 2, sample_limit: 0, ..DebugConfig::default() })
        .expect("builds");
    let b = NonAnswerDebugger::new(copy, DebugConfig { max_joins: 2, sample_limit: 0, ..DebugConfig::default() })
        .expect("builds");
    for q in ["saffron candle", "red oil", "tea light"] {
        let ra = a.debug(q).expect("runs");
        let rb = b.debug(q).expect("runs");
        assert_eq!(ra.answer_count(), rb.answer_count(), "{q}");
        assert_eq!(ra.non_answer_count(), rb.non_answer_count(), "{q}");
        assert_eq!(ra.mpan_count(), rb.mpan_count(), "{q}");
    }
}
