//! Integration: the Table 2 workload over the synthetic DBLife database.
//!
//! Checks the planted facts behave as designed (Widom authors Trio; DeRose's
//! direct VLDB path is dead while Gray's is alive), that every strategy and
//! the RE baseline agree with brute force on all ten queries, and that the
//! query-count ordering the paper reports (reuse ≤ no-reuse, lattice ≤ RE)
//! holds.

use datagen::{generate_dblife, paper_queries, DblifeConfig};
use kwdebug::binding::{map_keywords, KeywordQuery};
use kwdebug::baseline::run_return_everything;
use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
use kwdebug::oracle::{build_plan, AlivenessOracle};
use kwdebug::prune::PrunedLattice;
use kwdebug::traversal::{self, StrategyKind};
use relengine::Executor;

fn system(max_joins: usize) -> NonAnswerDebugger {
    NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins, sample_limit: 0, ..DebugConfig::default() },
    )
    .expect("system builds")
}

#[test]
fn widom_trio_is_an_answer() {
    let sys = system(2);
    let report = sys.debug("Widom Trio").expect("Q1 runs");
    assert!(report.answer_count() >= 1, "Widom authors the Trio paper");
}

#[test]
fn hristidis_keyword_search_alive_at_level5() {
    let sys = system(4);
    let report = sys.debug("Hristidis Keyword Search").expect("Q2 runs");
    // Hristidis works on the "Keyword Search" topic; both keywords land in
    // that topic tuple, reachable via two works_on hops or topic-topic paths.
    assert!(report.answer_count() + report.non_answer_count() > 0, "Q2 has MTNs");
}

#[test]
fn derose_vldb_direct_path_is_dead_grays_is_alive() {
    let sys = system(4);
    let db = sys.database();
    let query = KeywordQuery::parse("derose vldb").expect("parses");
    let mapping = map_keywords(&query, sys.index());
    let interp = &mapping.interpretations[0];
    // Hand-build the publication path MTN:
    // person1 — writes0 — publication0 — published_in0 — conference1.
    let person = db.table_id("person").expect("schema");
    let find_fk = |from: &str, from_col: &str| {
        let ft = db.table_id(from).expect("schema");
        let fc = db.table(ft).schema().col_index(from_col).expect("schema");
        db.foreign_keys()
            .iter()
            .position(|fk| fk.from_table == ft && fk.from_col == fc)
            .expect("fk exists")
    };
    let fk_wp = find_fk("writes", "person_id");
    let fk_wpub = find_fk("writes", "pub_id");
    let fk_pubc = find_fk("published_in", "pub_id");
    let fk_pic = find_fk("published_in", "conf_id");
    use kwdebug::jnts::{Jnts, TupleSet};
    use kwdebug::schema_graph::Incidence;
    let writes = db.table_id("writes").expect("schema");
    let publication = db.table_id("publication").expect("schema");
    let published_in = db.table_id("published_in").expect("schema");
    let conference = db.table_id("conference").expect("schema");
    let path = Jnts::single(TupleSet::new(person, 1))
        .extend(0, Incidence { fk: fk_wp, other: writes, local_is_from: false }, 0)
        .extend(1, Incidence { fk: fk_wpub, other: publication, local_is_from: true }, 0)
        .extend(2, Incidence { fk: fk_pubc, other: published_in, local_is_from: false }, 0)
        .extend(3, Incidence { fk: fk_pic, other: conference, local_is_from: true }, 1);

    let plan = build_plan(&path, interp, db, Some(sys.index()), &mapping.keywords)
        .expect("plan builds");
    let mut exec = Executor::new(db);
    assert!(
        !exec.exists(&plan).expect("plan runs"),
        "DeRose publications never appear in VLDB by construction"
    );

    // The same path for "gray vldb" is alive (planted publication 4).
    let query = KeywordQuery::parse("gray vldb").expect("parses");
    let mapping = map_keywords(&query, sys.index());
    let plan = build_plan(&path, &mapping.interpretations[0], db, Some(sys.index()), &mapping.keywords)
        .expect("plan builds");
    assert!(exec.exists(&plan).expect("plan runs"), "Gray publishes in VLDB");
}

#[test]
fn all_strategies_and_re_agree_on_the_whole_workload() {
    let sys = system(4);
    for q in paper_queries() {
        let query = KeywordQuery::parse(q.text).expect("parses");
        let mapping = map_keywords(&query, sys.index());
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(sys.lattice(), interp);
            let reference = {
                let mut oracle = AlivenessOracle::new(
                    sys.database(), Some(sys.index()), interp, &mapping.keywords, false,
                );
                traversal::run(
                    StrategyKind::BruteForce, sys.lattice(), &pruned, &mut oracle, 0.5,
                )
                .expect("brute runs")
            };
            for kind in StrategyKind::ALL {
                let mut oracle = AlivenessOracle::new(
                    sys.database(), Some(sys.index()), interp, &mapping.keywords, false,
                );
                let out = traversal::run(kind, sys.lattice(), &pruned, &mut oracle, 0.5)
                    .expect("strategy runs");
                assert_eq!(out.alive_mtns, reference.alive_mtns, "{} {kind}", q.id);
                assert_eq!(out.dead_mtns, reference.dead_mtns, "{} {kind}", q.id);
                assert_eq!(out.mpans, reference.mpans, "{} {kind}", q.id);
                // Shared-status strategies execute each node at most once, so
                // inference can only save queries relative to brute force.
                // (BU/TD without reuse may exceed brute force by re-executing
                // nodes shared between MTNs — that is exactly the redundancy
                // the paper's reuse variants remove.)
                if matches!(
                    kind,
                    StrategyKind::BottomUpWithReuse
                        | StrategyKind::TopDownWithReuse
                        | StrategyKind::ScoreBasedHeuristic
                ) {
                    assert!(
                        out.sql_queries <= reference.sql_queries,
                        "{} {kind}: shared-status inference exceeded brute force",
                        q.id
                    );
                }
            }
            let mut oracle = AlivenessOracle::new(
                sys.database(), Some(sys.index()), interp, &mapping.keywords, false,
            );
            let re = run_return_everything(sys.lattice(), &pruned, &mut oracle)
                .expect("RE runs");
            assert_eq!(re.outcome.alive_mtns, reference.alive_mtns, "{} RE", q.id);
            assert_eq!(re.outcome.dead_mtns, reference.dead_mtns, "{} RE", q.id);
            assert_eq!(re.outcome.mpans, reference.mpans, "{} RE", q.id);
        }
    }
}

#[test]
fn reuse_variants_never_execute_more_than_plain() {
    let sys = system(4);
    for q in paper_queries() {
        let query = KeywordQuery::parse(q.text).expect("parses");
        let mapping = map_keywords(&query, sys.index());
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(sys.lattice(), interp);
            let count = |kind| {
                let mut oracle = AlivenessOracle::new(
                    sys.database(), Some(sys.index()), interp, &mapping.keywords, false,
                );
                traversal::run(kind, sys.lattice(), &pruned, &mut oracle, 0.5)
                    .expect("runs")
                    .sql_queries
            };
            assert!(
                count(StrategyKind::BottomUpWithReuse) <= count(StrategyKind::BottomUp),
                "{}: BUWR > BU",
                q.id
            );
            assert!(
                count(StrategyKind::TopDownWithReuse) <= count(StrategyKind::TopDown),
                "{}: TDWR > TD",
                q.id
            );
        }
    }
}

#[test]
fn memoization_reduces_executions_across_strategies() {
    let sys = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig::tiny()),
        DebugConfig { max_joins: 3, sample_limit: 0, memoize: true, ..DebugConfig::default() },
    )
    .expect("system builds");
    let query = KeywordQuery::parse("Widom Trio").expect("parses");
    let mapping = map_keywords(&query, sys.index());
    let interp = &mapping.interpretations[0];
    let pruned = PrunedLattice::build(sys.lattice(), interp);
    let mut oracle =
        AlivenessOracle::new(sys.database(), Some(sys.index()), interp, &mapping.keywords, true);
    let first = traversal::run(
        StrategyKind::BottomUp, sys.lattice(), &pruned, &mut oracle, 0.5,
    )
    .expect("runs");
    let second = traversal::run(
        StrategyKind::BottomUp, sys.lattice(), &pruned, &mut oracle, 0.5,
    )
    .expect("runs");
    assert!(first.sql_queries > 0);
    assert_eq!(second.sql_queries, 0, "memo makes the second pass free");
    assert_eq!(first.alive_mtns, second.alive_mtns);
}

#[test]
fn results_are_seed_robust() {
    // The experiment claims must not hinge on one lucky seed: under a
    // different generator seed, every strategy still agrees with brute force
    // on the whole workload, and the planted facts still hold.
    let sys = NonAnswerDebugger::new(
        generate_dblife(&DblifeConfig { seed: 99, ..DblifeConfig::tiny() }),
        DebugConfig { max_joins: 4, sample_limit: 0, ..DebugConfig::default() },
    )
    .expect("system builds");
    assert!(sys.debug("Widom Trio").expect("runs").answer_count() >= 1);
    for q in paper_queries() {
        let reference = sys
            .debug_with_strategy(q.text, StrategyKind::BruteForce)
            .expect("brute runs");
        for kind in StrategyKind::ALL {
            let r = sys.debug_with_strategy(q.text, kind).expect("strategy runs");
            assert_eq!(r.answer_count(), reference.answer_count(), "{} {kind}", q.id);
            assert_eq!(r.non_answer_count(), reference.non_answer_count(), "{} {kind}", q.id);
            assert_eq!(r.mpan_count(), reference.mpan_count(), "{} {kind}", q.id);
        }
    }
}
