//! Randomized tests for the relational engine substrate.
//!
//! The semi-join-reduction executor is checked against a brute-force
//! nested-loop reference on randomized data: same emptiness verdict, same
//! result multiset, limits respected; and the keyword predicate is checked
//! against the obvious lowercase-contains reference.
//!
//! Cases are drawn from a seeded [`SplitMix64`] stream (the registry-free
//! stand-in for proptest), so failures replay deterministically.

use datagen::rng::SplitMix64;
use relengine::{
    DataType, Database, DatabaseBuilder, Executor, JoinTreePlan, PlanEdge, PlanNode, Predicate,
    Value,
};

/// Builds color(id, name) <- item(id, name, color_id) with the given rows.
fn build_db(colors: &[(i64, String)], items: &[(i64, String, Option<i64>)]) -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("color")
        .column("id", DataType::Int)
        .column("name", DataType::Text);
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("color_id", DataType::Int);
    b.foreign_key("item", "color_id", "color", "id").expect("static");
    let mut db = b.finish().expect("static");
    for (id, name) in colors {
        db.insert_values("color", vec![Value::Int(*id), Value::text(name.clone())])
            .expect("typed row");
    }
    for (id, name, cid) in items {
        db.insert_values(
            "item",
            vec![
                Value::Int(*id),
                Value::text(name.clone()),
                cid.map_or(Value::Null, Value::Int),
            ],
        )
        .expect("typed row");
    }
    db.finalize();
    db
}

/// Reference: nested loops over the 2-node join with predicates.
fn reference_join(
    db: &Database,
    item_kw: &str,
    color_kw: &str,
) -> Vec<(relengine::RowId, relengine::RowId)> {
    let item = db.table(1);
    let color = db.table(0);
    let mut out = Vec::new();
    for (iid, irow) in item.iter() {
        if !irow[1].contains_ci(item_kw) {
            continue;
        }
        for (cid, crow) in color.iter() {
            if !crow[1].contains_ci(color_kw) {
                continue;
            }
            if irow[2].as_int() == crow[0].as_int() && irow[2].as_int().is_some() {
                out.push((iid, cid));
            }
        }
    }
    out
}

/// Random word over `[a-d]{0,4}` — short enough to collide often.
fn word(rng: &mut SplitMix64) -> String {
    let len = rng.gen_range(0..=4usize);
    (0..len).map(|_| (b'a' + rng.below(4) as u8) as char).collect()
}

fn colors_vec(rng: &mut SplitMix64) -> Vec<(i64, String)> {
    let n = rng.gen_range(0..6usize);
    (0..n).map(|_| (rng.gen_range(0i64..6), word(rng))).collect()
}

fn items_vec(rng: &mut SplitMix64, max: usize) -> Vec<(i64, String, Option<i64>)> {
    let n = rng.gen_range(0..max);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0i64..8),
                word(rng),
                rng.gen_ratio(1, 2).then(|| rng.gen_range(0i64..8)),
            )
        })
        .collect()
}

#[test]
fn executor_matches_nested_loop_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xE701);
    for case in 0..64 {
        let colors = colors_vec(&mut rng);
        let items = items_vec(&mut rng, 8);
        let item_kw = word(&mut rng);
        let color_kw = word(&mut rng);

        let db = build_db(&colors, &items);
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(1, Predicate::any_text_contains(item_kw.clone())),
                PlanNode::new(0, Predicate::any_text_contains(color_kw.clone())),
            ],
            vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
        )
        .expect("valid plan");

        let mut exec = Executor::new(&db);
        let expected = reference_join(&db, &item_kw, &color_kw);
        let exists = exec.exists(&plan).expect("runs");
        assert_eq!(exists, !expected.is_empty(), "case {case}");

        let mut got: Vec<(u32, u32)> = exec
            .execute(&plan, 0)
            .expect("runs")
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let mut want = expected.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");

        // Limits are respected and prefix-consistent in count.
        let limited = exec.execute(&plan, 2).expect("runs");
        assert_eq!(limited.len(), expected.len().min(2), "case {case}");
    }
}

#[test]
fn contains_ci_matches_lowercase_contains() {
    // The engine's LIKE is ASCII-case-insensitive (Unicode text matches
    // byte-exactly), so the reference comparison uses ASCII inputs.
    let mut rng = SplitMix64::seed_from_u64(0xE702);
    const NEEDLE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    for case in 0..256 {
        let hay: String = {
            let len = rng.gen_range(0..=24usize);
            // Printable ASCII: 0x20 ..= 0x7E.
            (0..len).map(|_| (0x20 + rng.below(0x5F) as u8) as char).collect()
        };
        let needle: String = {
            let len = rng.gen_range(0..=6usize);
            (0..len)
                .map(|_| NEEDLE_CHARS[rng.gen_range(0..NEEDLE_CHARS.len())] as char)
                .collect()
        };
        let v = Value::text(hay.clone());
        let reference = hay.to_lowercase().contains(&needle.to_lowercase());
        assert_eq!(
            v.contains_ci(&needle.to_lowercase()),
            reference,
            "case {case}: hay={hay:?} needle={needle:?}"
        );
    }
}

#[test]
fn single_free_node_counts_all_rows() {
    let mut rng = SplitMix64::seed_from_u64(0xE703);
    for case in 0..64 {
        let items = items_vec(&mut rng, 8);
        let db = build_db(&[], &items);
        let plan = JoinTreePlan::new(vec![PlanNode::free(1)], vec![]).expect("valid plan");
        let mut exec = Executor::new(&db);
        assert_eq!(exec.count(&plan, 0).expect("runs"), items.len(), "case {case}");
    }
}

/// Three-node star: two item instances joined to the same color. Checks the
/// executor against nested loops on a genuinely branching tree (the shape
/// self-relationship networks produce).
mod star {
    use super::*;

    fn reference_star(
        db: &Database,
        kw1: &str,
        kw2: &str,
    ) -> Vec<(relengine::RowId, relengine::RowId, relengine::RowId)> {
        let item = db.table(1);
        let color = db.table(0);
        let mut out = Vec::new();
        for (cid, crow) in color.iter() {
            for (i1, r1) in item.iter() {
                if !r1[1].contains_ci(kw1) || r1[2].as_int() != crow[0].as_int() {
                    continue;
                }
                if r1[2].as_int().is_none() {
                    continue;
                }
                for (i2, r2) in item.iter() {
                    if !r2[1].contains_ci(kw2) || r2[2].as_int() != crow[0].as_int() {
                        continue;
                    }
                    out.push((cid, i1, i2));
                }
            }
        }
        out
    }

    #[test]
    fn star_join_matches_nested_loops() {
        let mut rng = SplitMix64::seed_from_u64(0xE704);
        for case in 0..48 {
            let colors: Vec<(i64, String)> = {
                let n = rng.gen_range(1..4usize);
                (0..n).map(|_| (rng.gen_range(0i64..4), word(&mut rng))).collect()
            };
            let items: Vec<(i64, String, Option<i64>)> = {
                let n = rng.gen_range(0..7usize);
                (0..n)
                    .map(|_| {
                        (
                            rng.gen_range(0i64..8),
                            word(&mut rng),
                            rng.gen_ratio(1, 2).then(|| rng.gen_range(0i64..4)),
                        )
                    })
                    .collect()
            };
            let kw1 = word(&mut rng);
            let kw2 = word(&mut rng);

            let db = super::build_db(&colors, &items);
            let plan = JoinTreePlan::new(
                vec![
                    PlanNode::free(0), // color at the center
                    PlanNode::new(1, Predicate::any_text_contains(kw1.clone())),
                    PlanNode::new(1, Predicate::any_text_contains(kw2.clone())),
                ],
                vec![
                    PlanEdge { a: 1, a_col: 2, b: 0, b_col: 0 },
                    PlanEdge { a: 2, a_col: 2, b: 0, b_col: 0 },
                ],
            )
            .expect("valid plan");
            let mut exec = Executor::new(&db);
            let mut got: Vec<(u32, u32, u32)> = exec
                .execute(&plan, 0)
                .expect("runs")
                .into_iter()
                .map(|t| (t[0], t[1], t[2]))
                .collect();
            let mut want = reference_star(&db, &kw1, &kw2);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(&got, &want, "case {case}");
            assert_eq!(exec.exists(&plan).expect("runs"), !want.is_empty(), "case {case}");
        }
    }
}
