//! Property tests for the relational engine substrate.
//!
//! The semi-join-reduction executor is checked against a brute-force
//! nested-loop reference on randomized data: same emptiness verdict, same
//! result multiset, limits respected; and the keyword predicate is checked
//! against the obvious lowercase-contains reference.

use proptest::prelude::*;
use relengine::{
    DataType, Database, DatabaseBuilder, Executor, JoinTreePlan, PlanEdge, PlanNode, Predicate,
    Value,
};

/// Builds color(id, name) <- item(id, name, color_id) with the given rows.
fn build_db(colors: &[(i64, String)], items: &[(i64, String, Option<i64>)]) -> Database {
    let mut b = DatabaseBuilder::new();
    b.table("color")
        .column("id", DataType::Int)
        .column("name", DataType::Text);
    b.table("item")
        .column("id", DataType::Int)
        .column("name", DataType::Text)
        .column("color_id", DataType::Int);
    b.foreign_key("item", "color_id", "color", "id").expect("static");
    let mut db = b.finish().expect("static");
    for (id, name) in colors {
        db.insert_values("color", vec![Value::Int(*id), Value::text(name.clone())])
            .expect("typed row");
    }
    for (id, name, cid) in items {
        db.insert_values(
            "item",
            vec![
                Value::Int(*id),
                Value::text(name.clone()),
                cid.map_or(Value::Null, Value::Int),
            ],
        )
        .expect("typed row");
    }
    db.finalize();
    db
}

/// Reference: nested loops over the 2-node join with predicates.
fn reference_join(
    db: &Database,
    item_kw: &str,
    color_kw: &str,
) -> Vec<(relengine::RowId, relengine::RowId)> {
    let item = db.table(1);
    let color = db.table(0);
    let mut out = Vec::new();
    for (iid, irow) in item.iter() {
        if !irow[1].contains_ci(item_kw) {
            continue;
        }
        for (cid, crow) in color.iter() {
            if !crow[1].contains_ci(color_kw) {
                continue;
            }
            if irow[2].as_int() == crow[0].as_int() && irow[2].as_int().is_some() {
                out.push((iid, cid));
            }
        }
    }
    out
}

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-d]{0,4}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn executor_matches_nested_loop_reference(
        colors in proptest::collection::vec((0i64..6, word()), 0..6),
        items in proptest::collection::vec(
            (0i64..8, word(), proptest::option::of(0i64..8)), 0..8),
        item_kw in word(),
        color_kw in word(),
    ) {
        // De-duplicate ids to keep pk-free tables but deterministic joins.
        let db = build_db(&colors, &items);
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(1, Predicate::any_text_contains(item_kw.clone())),
                PlanNode::new(0, Predicate::any_text_contains(color_kw.clone())),
            ],
            vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
        ).expect("valid plan");

        let mut exec = Executor::new(&db);
        let expected = reference_join(&db, &item_kw, &color_kw);
        let exists = exec.exists(&plan).expect("runs");
        prop_assert_eq!(exists, !expected.is_empty());

        let mut got: Vec<(u32, u32)> = exec
            .execute(&plan, 0)
            .expect("runs")
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let mut want = expected.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Limits are respected and prefix-consistent in count.
        let limited = exec.execute(&plan, 2).expect("runs");
        prop_assert_eq!(limited.len(), expected.len().min(2));
    }

    #[test]
    fn contains_ci_matches_lowercase_contains(
        // The engine's LIKE is ASCII-case-insensitive (Unicode text matches
        // byte-exactly), so the reference comparison uses ASCII inputs.
        hay in "[ -~]{0,24}",
        needle in "[a-zA-Z0-9 ]{0,6}",
    ) {
        let v = Value::text(hay.clone());
        let reference = hay.to_lowercase().contains(&needle.to_lowercase());
        prop_assert_eq!(v.contains_ci(&needle.to_lowercase()), reference);
    }

    #[test]
    fn single_free_node_counts_all_rows(
        items in proptest::collection::vec((0i64..8, word(), proptest::option::of(0i64..8)), 0..8),
    ) {
        let db = build_db(&[], &items);
        let plan = JoinTreePlan::new(vec![PlanNode::free(1)], vec![]).expect("valid plan");
        let mut exec = Executor::new(&db);
        prop_assert_eq!(exec.count(&plan, 0).expect("runs"), items.len());
    }
}

/// Three-node star: two item instances joined to the same color. Checks the
/// executor against nested loops on a genuinely branching tree (the shape
/// self-relationship networks produce).
mod star {
    use super::*;

    fn reference_star(
        db: &Database,
        kw1: &str,
        kw2: &str,
    ) -> Vec<(relengine::RowId, relengine::RowId, relengine::RowId)> {
        let item = db.table(1);
        let color = db.table(0);
        let mut out = Vec::new();
        for (cid, crow) in color.iter() {
            for (i1, r1) in item.iter() {
                if !r1[1].contains_ci(kw1) || r1[2].as_int() != crow[0].as_int() {
                    continue;
                }
                if r1[2].as_int().is_none() {
                    continue;
                }
                for (i2, r2) in item.iter() {
                    if !r2[1].contains_ci(kw2) || r2[2].as_int() != crow[0].as_int() {
                        continue;
                    }
                    out.push((cid, i1, i2));
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn star_join_matches_nested_loops(
            colors in proptest::collection::vec((0i64..4, super::word()), 1..4),
            items in proptest::collection::vec(
                (0i64..8, super::word(), proptest::option::of(0i64..4)), 0..7),
            kw1 in super::word(),
            kw2 in super::word(),
        ) {
            let db = super::build_db(&colors, &items);
            let plan = JoinTreePlan::new(
                vec![
                    PlanNode::free(0), // color at the center
                    PlanNode::new(1, Predicate::any_text_contains(kw1.clone())),
                    PlanNode::new(1, Predicate::any_text_contains(kw2.clone())),
                ],
                vec![
                    PlanEdge { a: 1, a_col: 2, b: 0, b_col: 0 },
                    PlanEdge { a: 2, a_col: 2, b: 0, b_col: 0 },
                ],
            ).expect("valid plan");
            let mut exec = Executor::new(&db);
            let mut got: Vec<(u32, u32, u32)> = exec
                .execute(&plan, 0)
                .expect("runs")
                .into_iter()
                .map(|t| (t[0], t[1], t[2]))
                .collect();
            let mut want = reference_star(&db, &kw1, &kw2);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(exec.exists(&plan).expect("runs"), !want.is_empty());
        }
    }
}
