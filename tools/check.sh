#!/usr/bin/env bash
# Local pre-commit gate: everything CI would check, in dependency order.
#
#   tools/check.sh          # full gate
#   tools/check.sh --fast   # skip docs + clippy (build + tests only)
#
# Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build --release (workspace, all targets)"
cargo build --workspace --release --bins --examples --benches --tests

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> chaos suite (fixed seeds: degraded-mode soundness + accounting)"
cargo test --workspace -q --test chaos_soundness --test metrics_accounting

echo "==> parallel scheduler (sequential-equivalence + chaos smoke, single-threaded)"
cargo test --workspace -q --test parallel_equivalence
cargo test --workspace -q --test parallel_equivalence --test chaos_soundness -- --test-threads=1

echo "==> prune substrate differential (compact vs naive reference)"
cargo test --workspace --release -q --test prune_equivalence

echo "==> probe evaluation cache differential (cache on/off, all strategies)"
cargo test --workspace --release -q --test probe_cache_equivalence

echo "==> cold-vs-warm probe cache benchmark (DBLife, results/BENCH_exp_probe_cache.json)"
./target/release/exp_probe_cache --scale medium | grep -E "throughput|speedup|wrote"

echo "==> serving layer (kwserve loopback: wire-vs-library bit-equivalence, admission)"
cargo test --workspace --release -q --test loopback

echo "==> protocol decoder fuzz (truncations, bit flips, hostile length prefixes)"
cargo test --workspace --release -q --test protocol_fuzz

echo "==> chaos soak (fixed seeds: shedding, deadlines, panic isolation, leak-free permits)"
cargo test --workspace --release -q --test chaos_soak

echo "==> serving load generator (E16 smoke + E17 overload, results/BENCH_exp_serve.json)"
./target/release/exp_serve --scale tiny --sessions 2,8,64 --queries 4 --overload | grep -E "BENCH_JSON|overload p99"

if [[ $fast -eq 0 ]]; then
    echo "==> cargo doc --no-deps (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

    echo "==> cargo clippy --workspace (warnings denied)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> all checks passed"
