#!/usr/bin/env bash
# Local pre-commit gate: everything CI would check, in dependency order.
#
#   tools/check.sh          # full gate
#   tools/check.sh --fast   # skip docs + clippy (build + tests only)
#
# Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build --release (workspace, all targets)"
cargo build --workspace --release --bins --examples --benches --tests

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> chaos suite (fixed seeds: degraded-mode soundness + accounting)"
cargo test --workspace -q --test chaos_soundness --test metrics_accounting

echo "==> parallel scheduler (sequential-equivalence + chaos smoke, single-threaded)"
cargo test --workspace -q --test parallel_equivalence
cargo test --workspace -q --test parallel_equivalence --test chaos_soundness -- --test-threads=1

echo "==> prune substrate differential (compact vs naive reference)"
cargo test --workspace --release -q --test prune_equivalence

echo "==> probe evaluation cache differential (cache on/off, all strategies)"
cargo test --workspace --release -q --test probe_cache_equivalence

echo "==> shared evaluation cache differential (cross-session, budgets, chaos pollution)"
cargo test --workspace --release -q --test shared_cache_equivalence

echo "==> cold-vs-warm probe cache benchmark (DBLife, results/BENCH_exp_probe_cache.json)"
./target/release/exp_probe_cache --scale medium | grep -E "throughput|speedup|wrote"

echo "==> mutable-database differential (incremental maintenance vs fresh rebuild)"
cargo test --workspace --release -q --test mutation_equivalence

echo "==> mutation benchmark (E19 incremental vs drop-and-rebuild, results/BENCH_exp_mutate.json)"
./target/release/exp_mutate | grep -E "speedup|wrote"

echo "==> serving layer (kwserve loopback: wire-vs-library bit-equivalence, admission)"
cargo test --workspace --release -q --test loopback

echo "==> protocol decoder fuzz (truncations, bit flips, hostile length prefixes)"
cargo test --workspace --release -q --test protocol_fuzz

echo "==> chaos soak (fixed seeds: shedding, deadlines, panic isolation, leak-free permits)"
cargo test --workspace --release -q --test chaos_soak

echo "==> shared-cache soak (cross-tenant chaos against one store, accounting, pollution)"
cargo test --workspace --release -q --test shared_cache_soak

echo "==> batched probing differential (cross-session waves, budgets, chaos, mid-wave death)"
cargo test --workspace --release -q --test batch_equivalence

echo "==> serving load generator (E16 smoke + E17 overload + E18 warm + E20 batch, results/BENCH_exp_serve.json)"
./target/release/exp_serve --scale tiny --sessions 2,8,64 --queries 4 --overload --warm --batch \
    | grep -E "BENCH_JSON|overload p99|fewer probes|fewer probe executions"

echo "==> SERVING.md wire-spec drift check (tables must match protocol.rs codes)"
drift=0
# Every message-type constant (`pub const BYE_ACK: u8 = 0x84;`) must appear in
# the SERVING.md frame tables as a `| \`0x84\` | \`ByeAck\` |` row.
while read -r name code; do
    camel=$(echo "$name" | awk -F_ '{for (i = 1; i <= NF; i++) \
        printf "%s%s", toupper(substr($i,1,1)), tolower(substr($i,2))}')
    grep -Eq "\|[[:space:]]*\`${code}\`[[:space:]]*\|[[:space:]]*\`${camel}\`" SERVING.md \
        || { echo "SERVING.md: missing or renamed message row: ${code} ${camel}"; drift=1; }
done < <(sed -n 's/^ *pub const \([A-Z_]*\): u8 = \(0x[0-9A-Fa-f]*\);.*/\1 \2/p' \
    crates/kwserve/src/protocol.rs)
# Every error code (`1 => Some(ErrorCode::Malformed),`) must appear in the
# SERVING.md error table as a `| 1 | \`Malformed\` |` row.
while read -r num name; do
    grep -Eq "^\|[[:space:]]*${num}[[:space:]]*\|[[:space:]]*\`${name}\`" SERVING.md \
        || { echo "SERVING.md: missing or renamed error row: ${num} ${name}"; drift=1; }
done < <(sed -n 's/^ *\([0-9][0-9]*\) => Some(ErrorCode::\([A-Za-z]*\)).*/\1 \2/p' \
    crates/kwserve/src/protocol.rs)
[[ $drift -eq 0 ]] || { echo "wire-spec tables have drifted from protocol.rs"; exit 1; }

if [[ $fast -eq 0 ]]; then
    echo "==> cargo doc --no-deps (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

    echo "==> cargo clippy --workspace (warnings denied)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> all checks passed"
