//! Umbrella crate for the EDBT 2015 "Debugging Non-Answers in Keyword Search
//! Systems" reproduction.
//!
//! Re-exports the four workspace crates so examples and downstream users can
//! depend on a single package:
//!
//! * [`kwdebug`] — the paper's contribution: lattice, MTN/MPAN discovery,
//!   traversal strategies, baselines, and the [`kwdebug::NonAnswerDebugger`]
//!   entry point.
//! * [`relengine`] — the in-memory relational engine substrate.
//! * [`textindex`] — the inverted keyword index substrate.
//! * [`datagen`] — the Figure 2 toy database and the synthetic DBLife
//!   generator with the Table 2 workload.
//!
//! See `examples/quickstart.rs` for the three-minute tour.

pub use datagen;
pub use kwdebug;
pub use relengine;
pub use textindex;
